#include "core/tp.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>

#include "common/check.h"

namespace ldv {

// ---------------------------------------------------------------------------
// Candidate list (the structure C of Section 5.5)
// ---------------------------------------------------------------------------
//
// Buckets are indexed by j = h(R, v). The bucket for value v holds a
// "v-record" whose payload is the list of (group, slot) entries from which a
// tuple with SA value v could be removed. A monotone scan pointer yields the
// least frequent alive SA value in R: during phase two h(R, v) never
// decreases (Lemma 5 keeps h(R) itself constant), so records only migrate to
// higher buckets and no record can ever surface below the pointer.
//
// Entries are validated lazily when popped (the owning group may have died
// or run out of value v since insertion); a dead group additionally has all
// of its entries unlinked eagerly via a per-group chain, mirroring the
// "remove all its entries (i, v) from C" step of Section 5.5.
class TpEngine::CandidateList {
 public:
  /// `entry_capacity` is the exact number of AddEntry calls the caller will
  /// make (one per (alive group, distinct SA value) pair), so the entry
  /// arrays never reallocate during the build.
  CandidateList(std::size_t m, std::size_t group_count, std::uint32_t bucket_cap,
                std::size_t entry_capacity)
      : v_head_(m, kNil),
        v_prev_(m, kNil),
        v_next_(m, kNil),
        v_bucket_(m, kNil),
        group_head_(group_count, kNil),
        bucket_head_(bucket_cap + 1, kNil),
        cap_(bucket_cap) {
    e_group_.reserve(entry_capacity);
    e_slot_.reserve(entry_capacity);
    e_value_.reserve(entry_capacity);
    e_prev_.reserve(entry_capacity);
    e_next_.reserve(entry_capacity);
    e_live_.reserve(entry_capacity);
    e_gnext_.reserve(entry_capacity);
  }

  /// Registers candidate (g, slot) for SA value `v`; `bucket` is the current
  /// h(R, v). Only used while building the list.
  void AddEntry(GroupId g, std::uint32_t slot, SaValue v, std::uint32_t bucket) {
    std::int32_t e = static_cast<std::int32_t>(e_group_.size());
    e_group_.push_back(g);
    e_slot_.push_back(slot);
    e_value_.push_back(v);
    e_prev_.push_back(kNil);
    e_next_.push_back(v_head_[v]);
    e_live_.push_back(1);
    e_gnext_.push_back(group_head_[g]);
    group_head_[g] = e;
    if (v_head_[v] != kNil) e_prev_[v_head_[v]] = e;
    v_head_[v] = e;
    if (v_bucket_[v] == kNil) LinkRecord(v, std::min(bucket, cap_));
  }

  /// Finds the least frequent SA value in R that still has candidates.
  /// Returns false when the list is exhausted (phase two failed).
  bool NextCandidate(SaValue* v, std::int32_t* entry) {
    while (pointer_ <= cap_ && bucket_head_[pointer_] == kNil) ++pointer_;
    if (pointer_ > cap_) return false;
    *v = static_cast<SaValue>(bucket_head_[pointer_]);
    *entry = v_head_[*v];
    LDIV_CHECK_NE(*entry, kNil);
    return true;
  }

  GroupId entry_group(std::int32_t e) const { return e_group_[e]; }
  std::uint32_t entry_slot(std::int32_t e) const { return e_slot_[e]; }

  /// Unlinks a stale entry; deactivates the v-record when it runs empty.
  void DropEntry(std::int32_t e) {
    if (!e_live_[e]) return;
    e_live_[e] = 0;
    SaValue v = e_value_[e];
    std::int32_t p = e_prev_[e];
    std::int32_t n = e_next_[e];
    if (p != kNil) {
      e_next_[p] = n;
    } else {
      v_head_[v] = n;
    }
    if (n != kNil) e_prev_[n] = p;
    if (v_head_[v] == kNil && v_bucket_[v] != kNil) UnlinkRecord(v);
  }

  /// Eagerly drops every entry of a dead group.
  void DropGroup(GroupId g) {
    for (std::int32_t e = group_head_[g]; e != kNil; e = e_gnext_[e]) DropEntry(e);
    group_head_[g] = kNil;
  }

  /// Migrates v's record after h(R, v) increased to `new_count`.
  void OnResidueIncrement(SaValue v, std::uint32_t new_count) {
    if (v_bucket_[v] == kNil) return;
    std::uint32_t target = std::min(new_count, cap_);
    if (static_cast<std::uint32_t>(v_bucket_[v]) == target) return;
    UnlinkRecord(v);
    LinkRecord(v, target);
  }

 private:
  static constexpr std::int32_t kNil = -1;

  void LinkRecord(SaValue v, std::uint32_t bucket) {
    std::int32_t head = bucket_head_[bucket];
    v_prev_[v] = kNil;
    v_next_[v] = head;
    if (head != kNil) v_prev_[head] = static_cast<std::int32_t>(v);
    bucket_head_[bucket] = static_cast<std::int32_t>(v);
    v_bucket_[v] = static_cast<std::int32_t>(bucket);
  }

  void UnlinkRecord(SaValue v) {
    std::int32_t p = v_prev_[v];
    std::int32_t n = v_next_[v];
    if (p != kNil) {
      v_next_[p] = n;
    } else {
      bucket_head_[v_bucket_[v]] = n;
    }
    if (n != kNil) v_prev_[n] = p;
    v_bucket_[v] = kNil;
  }

  // Entry arrays (one logical struct-of-arrays; at most one entry per
  // (group, distinct SA value) pair, so O(n) in total).
  std::vector<GroupId> e_group_;
  std::vector<std::uint32_t> e_slot_;
  std::vector<SaValue> e_value_;
  std::vector<std::int32_t> e_prev_, e_next_;  // v-list links
  std::vector<std::int32_t> e_gnext_;          // per-group chain
  std::vector<char> e_live_;

  std::vector<std::int32_t> v_head_;    // value -> first live entry
  std::vector<std::int32_t> v_prev_, v_next_;  // bucket list links
  std::vector<std::int32_t> v_bucket_;  // value -> bucket index, kNil inactive
  std::vector<std::int32_t> group_head_;
  std::vector<std::int32_t> bucket_head_;
  std::uint32_t cap_ = 0;
  std::uint32_t pointer_ = 0;
};

// ---------------------------------------------------------------------------
// TpEngine
// ---------------------------------------------------------------------------

namespace {

// `entries` is a caller-owned staging buffer, reused across groups so the
// per-group index build does not malloc a fresh vector tens of thousands
// of times per solve.
PillarIndex GroupIndexFromRuns(const QiGroup& group,
                               std::vector<std::pair<SaValue, std::uint32_t>>& entries) {
  entries.clear();
  entries.reserve(group.sa_runs.size());
  for (std::size_t i = 0; i < group.sa_runs.size(); ++i) {
    entries.emplace_back(group.sa_runs[i].first, group.RunLength(i));
  }
  return PillarIndex(entries);
}

}  // namespace

TpEngine::TpEngine(const GroupedTable& grouped, std::uint32_t l)
    : l_(l), m_(grouped.sa_domain_size()), residue_(PillarIndex::DenseEmpty(m_)) {
  LDIV_CHECK_GE(l_, 1u);
  groups_.reserve(grouped.group_count());
  std::vector<std::pair<SaValue, std::uint32_t>> entries;
  for (GroupId g = 0; g < grouped.group_count(); ++g) {
    groups_.push_back(GroupState{GroupIndexFromRuns(grouped.group(g), entries), &grouped.group(g)});
  }
  has_rows_ = true;
  removed_rows_.reserve(grouped.row_count() / 8);
}

TpEngine::TpEngine(const std::vector<SaHistogram>& group_histograms, std::uint32_t l)
    : l_(l),
      m_(group_histograms.empty() ? 1 : group_histograms[0].domain_size()),
      residue_(PillarIndex::DenseEmpty(m_)) {
  LDIV_CHECK_GE(l_, 1u);
  InitFromHistograms(group_histograms);
}

TpEngine::TpEngine(const std::vector<SaHistogram>& group_histograms, const SaHistogram& residue,
                   std::uint32_t l)
    : l_(l), m_(residue.domain_size()), residue_(PillarIndex::FromHistogram(residue)) {
  LDIV_CHECK_GE(l_, 1u);
  initial_residue_ = residue.total();
  InitFromHistograms(group_histograms);
}

void TpEngine::InitFromHistograms(const std::vector<SaHistogram>& group_histograms) {
  groups_.reserve(group_histograms.size());
  for (const SaHistogram& h : group_histograms) {
    LDIV_CHECK_EQ(h.domain_size(), m_);
    groups_.push_back(GroupState{PillarIndex::FromHistogram(h), nullptr});
  }
  has_rows_ = false;
}

SaHistogram TpEngine::GroupHistogram(GroupId g) const {
  LDIV_CHECK_LT(g, groups_.size());
  return groups_[g].index.ToHistogram(m_);
}

bool TpEngine::GroupIsFat(GroupId g) const {
  const PillarIndex& idx = groups_[g].index;
  return idx.total() >= static_cast<std::uint64_t>(l_) * idx.PillarHeight() + 1;
}

bool TpEngine::GroupIsThin(GroupId g) const {
  const PillarIndex& idx = groups_[g].index;
  return idx.total() == static_cast<std::uint64_t>(l_) * idx.PillarHeight();
}

bool TpEngine::GroupIsConflicting(GroupId g) const {
  const PillarIndex& idx = groups_[g].index;
  return idx.AnyPillarSlot(
      [&](std::uint32_t slot) { return residue_.IsPillarValue(idx.value(slot)); });
}

SaValue TpEngine::RemoveTuple(GroupId g, std::uint32_t slot, CandidateList* candidates) {
  GroupState& gs = groups_[g];
  SaValue v = gs.index.value(slot);
  gs.index.Decrement(slot);
  if (has_rows_) {
    const QiGroup& src = *gs.source;
    removed_rows_.push_back(src.rows[src.sa_runs[slot].second + gs.index.count(slot)]);
  }
  // The residue index is dense over the SA domain, so slot ids coincide with
  // SA values.
  residue_.Increment(v);
  if (candidates != nullptr) candidates->OnResidueIncrement(v, residue_.count(v));
  return v;
}

void TpEngine::RunPhase1() {
  for (GroupId g = 0; g < groups_.size(); ++g) {
    PillarIndex& idx = groups_[g].index;
    // "Repeatedly remove one tuple from its pillar until the QI-group is
    // l-eligible" (Section 5.2). Ties between pillars are broken by the
    // smallest SA value for determinism; by the paper's argument the end
    // state is independent of this choice.
    while (!idx.IsEligible(l_)) {
      RemoveTuple(g, idx.FirstPillarSlot(), nullptr);
    }
  }
  stats_.removed_phase1 = residue_.total() - initial_residue_;
  stats_.residue_pillar_after_phase1 = residue_.PillarHeight();
}

bool TpEngine::RunPhase2() {
  if (ResidueEligible()) return true;
  const std::uint32_t kResidueHeight = residue_.PillarHeight();  // h(R-dot), fixed by Lemma 5

#ifndef NDEBUG
  for (GroupId g = 0; g < groups_.size(); ++g) {
    LDIV_DCHECK(groups_[g].index.IsEligible(l_)) << "phase two requires l-eligible groups";
  }
#endif

  std::size_t entry_capacity = 0;
  for (GroupId g = 0; g < groups_.size(); ++g) {
    const PillarIndex& idx = groups_[g].index;
    if (idx.empty() || GroupIsDead(g)) continue;
    entry_capacity += idx.slot_count();
  }
  CandidateList candidates(m_, groups_.size(), kResidueHeight, entry_capacity);
  for (GroupId g = 0; g < groups_.size(); ++g) {
    const PillarIndex& idx = groups_[g].index;
    if (idx.empty() || GroupIsDead(g)) continue;
    for (std::uint32_t slot = 0; slot < idx.slot_count(); ++slot) {
      if (idx.count(slot) == 0) continue;
      SaValue v = idx.value(slot);
      candidates.AddEntry(g, slot, v, residue_.count(v));
    }
  }

  while (!ResidueEligible()) {
    SaValue v = 0;
    std::int32_t e = -1;
    if (!candidates.NextCandidate(&v, &e)) return false;  // no alive SA value: phase three
    GroupId g = candidates.entry_group(e);
    std::uint32_t slot = candidates.entry_slot(e);
    PillarIndex& idx = groups_[g].index;
    if (idx.count(slot) == 0) {
      candidates.DropEntry(e);
      continue;
    }
    if (idx.empty() || GroupIsDead(g)) {
      candidates.DropGroup(g);
      continue;
    }
    ++stats_.phase2_iterations;
    if (GroupIsFat(g)) {
      // Fat group: donate one tuple with the chosen value v.
      RemoveTuple(g, slot, &candidates);
    } else {
      // Thin and alive, hence non-conflicting: donate one tuple from each
      // pillar (snapshot first; decrements reshuffle the pillar level).
      std::vector<std::uint32_t> pillars = idx.PillarSlots();
      for (std::uint32_t ps : pillars) RemoveTuple(g, ps, &candidates);
    }
    if (idx.empty() || GroupIsDead(g)) candidates.DropGroup(g);
    // Lemma 5: phase two never increases h(R).
    LDIV_CHECK_EQ(residue_.PillarHeight(), kResidueHeight);
  }
  return true;
}

std::uint32_t TpEngine::PickFatDonationSlot(GroupId g) const {
  const PillarIndex& idx = groups_[g].index;
  std::uint32_t best_slot = std::numeric_limits<std::uint32_t>::max();
  std::uint64_t best_count = std::numeric_limits<std::uint64_t>::max();
  for (std::uint32_t slot = 0; slot < idx.slot_count(); ++slot) {
    if (idx.count(slot) == 0) continue;
    SaValue v = idx.value(slot);
    if (residue_.IsPillarValue(v)) continue;  // donating a pillar would raise h(R)
    std::uint64_t rc = residue_.count(v);     // residue slots coincide with values
    if (rc < best_count) {
      best_count = rc;
      best_slot = slot;
    }
  }
  // An l-eligible group holds >= l distinct values while R has <= l-1
  // pillars (R is not yet l-eligible), so a non-pillar donation exists.
  LDIV_CHECK_NE(best_slot, std::numeric_limits<std::uint32_t>::max());
  return best_slot;
}

void TpEngine::RunPhase3() {
  const std::uint32_t h_start = residue_.PillarHeight();
  // Lemma 9 bounds the number of rounds by h(R-double-dot); the +1 is slack
  // for the round counter check below.
  const std::uint32_t round_limit = h_start + 1;
  std::vector<char> in_p(m_, 0);

  while (!ResidueEligible()) {
    LDIV_CHECK_LT(stats_.phase3_rounds, round_limit)
        << "phase three exceeded the Lemma 9 round bound";
    ++stats_.phase3_rounds;

    // ---- Step one: greedy SET-COVER over the pillars P of R ----
    std::vector<SaValue> p_values;
    residue_.ForEachPillarSlot([&](std::uint32_t slot) {
      SaValue v = residue_.value(slot);
      in_p[v] = 1;
      p_values.push_back(v);
    });
    std::size_t p_left = p_values.size();
    std::vector<GroupId> selection;
    std::vector<char> picked(groups_.size(), 0);
    while (p_left > 0) {
      std::int64_t best = -1;
      std::uint64_t best_cost = std::numeric_limits<std::uint64_t>::max();
      for (GroupId g = 0; g < groups_.size(); ++g) {
        if (picked[g] || groups_[g].index.empty()) continue;
        const PillarIndex& idx = groups_[g].index;
        std::uint64_t cost = 0;
        idx.ForEachPillarSlot([&](std::uint32_t slot) { cost += in_p[idx.value(slot)]; });
        if (cost < best_cost) {
          best_cost = cost;
          best = static_cast<std::int64_t>(g);
        }
      }
      LDIV_CHECK_GE(best, 0) << "no QI-group available for the cover";
      // Lemma 7 guarantees strict progress: some group does not conflict on
      // each remaining pillar.
      LDIV_CHECK_LT(best_cost, p_left) << "greedy cover made no progress";
      picked[best] = 1;
      selection.push_back(static_cast<GroupId>(best));
      const PillarIndex& bidx = groups_[best].index;
      for (SaValue v : p_values) {
        if (in_p[v] && !bidx.IsPillarValue(v)) {
          in_p[v] = 0;
          --p_left;
        }
      }
    }
    for (SaValue v : p_values) in_p[v] = 0;  // clear any survivors

    // Donate one tuple from each pillar of every selected QI-group. The
    // "terminate as soon as R is l-eligible" rule may only fire after a
    // group's donation completes: a thin group stays l-eligible only once
    // all of its pillars have donated, so stopping mid-donation would leave
    // an ineligible QI-group behind.
    for (GroupId g : selection) {
      std::vector<std::uint32_t> pillars = groups_[g].index.PillarSlots();
      for (std::uint32_t ps : pillars) RemoveTuple(g, ps, nullptr);
      if (ResidueEligible()) return;
    }

    // ---- Step two: re-kill every QI-group that came (back) alive ----
    for (GroupId g = 0; g < groups_.size(); ++g) {
      for (;;) {
        PillarIndex& idx = groups_[g].index;
        if (idx.empty()) break;
        std::uint64_t lh = static_cast<std::uint64_t>(l_) * idx.PillarHeight();
        if (idx.total() > lh) {
          // Fat: donate any SA value that is not a pillar of R (we pick the
          // least frequent in R to also help eligibility along).
          RemoveTuple(g, PickFatDonationSlot(g), nullptr);
          if (ResidueEligible()) return;
        } else {
          LDIV_CHECK_EQ(idx.total(), lh) << "QI-group lost l-eligibility";
          if (GroupIsConflicting(g)) break;  // dead again
          // As in step one, the donation of a thin group is atomic: check
          // termination only after every pillar has donated.
          std::vector<std::uint32_t> pillars = idx.PillarSlots();
          for (std::uint32_t ps : pillars) RemoveTuple(g, ps, nullptr);
          if (ResidueEligible()) return;
        }
      }
    }
  }
}

const TpStats& TpEngine::Run() {
  LDIV_CHECK(!ran_) << "TpEngine::Run may only be called once";
  ran_ = true;

  // Problem 1 / 2 are feasible iff the whole table is l-eligible (Lemma 1).
  SaHistogram all = residue_.ToHistogram(m_);
  for (const GroupState& gs : groups_) {
    const PillarIndex& idx = gs.index;
    for (std::uint32_t slot = 0; slot < idx.slot_count(); ++slot) {
      if (idx.count(slot) > 0) all.Add(idx.value(slot), idx.count(slot));
    }
  }
  LDIV_CHECK(all.IsEligible(l_)) << "input table is not l-eligible; no solution exists";

  RunPhase1();
  if (ResidueEligible()) {
    stats_.terminated_phase = 1;
    stats_.residue_pillar_after_phase2 = residue_.PillarHeight();
  } else {
    std::uint64_t before2 = residue_.total();
    bool done = RunPhase2();
    stats_.removed_phase2 = residue_.total() - before2;
    stats_.residue_pillar_after_phase2 = residue_.PillarHeight();
    if (done) {
      stats_.terminated_phase = 2;
    } else {
      std::uint64_t before3 = residue_.total();
      RunPhase3();
      stats_.removed_phase3 = residue_.total() - before3;
      stats_.terminated_phase = 3;
    }
  }
  stats_.residue_size = residue_.total();
  LDIV_CHECK(ResidueEligible());
  // Condition (a) of Section 5.1: every QI-group must end l-eligible.
  for (GroupId g = 0; g < groups_.size(); ++g) {
    LDIV_CHECK(groups_[g].index.IsEligible(l_)) << "QI-group " << g << " ended ineligible";
  }
  return stats_;
}

std::vector<RowId> TpEngine::RemainingRows(GroupId g) const {
  LDIV_CHECK(has_rows_);
  const GroupState& gs = groups_[g];
  std::vector<RowId> rows;
  rows.reserve(static_cast<std::size_t>(gs.index.total()));
  for (std::uint32_t slot = 0; slot < gs.index.slot_count(); ++slot) {
    std::uint32_t remaining = gs.index.count(slot);
    std::uint32_t begin = gs.source->sa_runs[slot].second;
    for (std::uint32_t i = 0; i < remaining; ++i) rows.push_back(gs.source->rows[begin + i]);
  }
  return rows;
}

// ---------------------------------------------------------------------------
// TpResult / RunTp
// ---------------------------------------------------------------------------

Partition TpResult::ToPartition() const {
  Partition p;
  p.Reserve(kept_groups.size() + 1);
  for (const auto& group : kept_groups) p.AddGroup(group);
  p.AddGroup(residue_rows);
  return p;
}

TpResult RunTp(const GroupedTable& grouped, std::uint32_t l) {
  TpResult result;
  SaHistogram all(grouped.sa_domain_size());
  for (const QiGroup& group : grouped.groups()) {
    for (std::size_t i = 0; i < group.sa_runs.size(); ++i) {
      all.Add(group.sa_runs[i].first, group.RunLength(i));
    }
  }
  if (!all.IsEligible(l)) {
    result.feasible = false;
    return result;
  }

  auto start = std::chrono::steady_clock::now();
  TpEngine engine(grouped, l);
  engine.Run();
  result.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  result.feasible = true;
  result.stats = engine.stats();
  result.residue_rows = engine.removed_rows();
  result.kept_groups.reserve(grouped.group_count());
  for (GroupId g = 0; g < grouped.group_count(); ++g) {
    std::vector<RowId> rows = engine.RemainingRows(g);
    if (!rows.empty()) result.kept_groups.push_back(std::move(rows));
  }
  return result;
}

TpResult RunTp(const Table& table, std::uint32_t l, Workspace* workspace) {
  GroupedTable grouped(table, workspace);
  return RunTp(grouped, l);
}

}  // namespace ldv
