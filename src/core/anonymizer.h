#ifndef LDIV_CORE_ANONYMIZER_H_
#define LDIV_CORE_ANONYMIZER_H_

#include <cstdint>

#include "core/algorithm.h"
#include "hilbert/hilbert_partitioner.h"

namespace ldv {

/// Convenience facade over the AlgorithmRegistry: runs `algorithm` on
/// `table` with privacy parameter `l` and returns the uniform outcome with
/// the shared utility metrics filled in. Equivalent to
/// `AlgorithmRegistry::Global().Create(algorithm, options)->Run(table, l)`.
/// Pass a Workspace to reuse solver scratch across repeated calls.
AnonymizationOutcome Anonymize(const Table& table, std::uint32_t l, Algorithm algorithm,
                               const AnonymizerOptions& options,
                               Workspace* workspace = nullptr);

/// Same, with default options except the Hilbert splitting knobs (kept for
/// callers predating AnonymizerOptions).
AnonymizationOutcome Anonymize(const Table& table, std::uint32_t l, Algorithm algorithm,
                               const HilbertOptions& hilbert_options = {});

}  // namespace ldv

#endif  // LDIV_CORE_ANONYMIZER_H_
