#ifndef LDIV_CORE_ANONYMIZER_H_
#define LDIV_CORE_ANONYMIZER_H_

#include <cstdint>
#include <string>

#include "anonymity/partition.h"
#include "common/table.h"
#include "core/tp.h"
#include "core/tp_plus.h"
#include "hilbert/hilbert_partitioner.h"

namespace ldv {

/// The suppression-based l-diversity algorithms evaluated in Section 6.1.
enum class Algorithm {
  kTp,       ///< three-phase (l*d)-approximation (Section 5)
  kTpPlus,   ///< hybrid: TP + Hilbert refinement of R (Section 6.1)
  kHilbert,  ///< the Hilbert baseline of Ghinita et al. [16]
};

const char* AlgorithmName(Algorithm algorithm);

/// Uniform outcome for the partition-producing algorithms, carrying the
/// utility measures the paper reports.
struct AnonymizationOutcome {
  bool feasible = false;
  Algorithm algorithm = Algorithm::kTp;
  Partition partition;
  /// Number of stars of the induced generalization (Problem 1 objective).
  std::uint64_t stars = 0;
  /// Number of tuples with at least one star (Problem 2 objective).
  std::uint64_t suppressed_tuples = 0;
  /// Wall-clock seconds of the solve.
  double seconds = 0.0;
  /// TP phase statistics (meaningful for kTp / kTpPlus).
  TpStats tp_stats;
};

/// Runs `algorithm` on `table` with privacy parameter `l` and computes the
/// utility measures. This is the main convenience entry point used by the
/// examples and the benchmark harness.
AnonymizationOutcome Anonymize(const Table& table, std::uint32_t l, Algorithm algorithm,
                               const HilbertOptions& hilbert_options = {});

}  // namespace ldv

#endif  // LDIV_CORE_ANONYMIZER_H_
