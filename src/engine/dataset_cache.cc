#include "engine/dataset_cache.h"

#include <sys/stat.h>

#include <utility>

#include "engine/engine.h"

namespace ldv {

std::shared_ptr<const EngineTable> DatasetCache::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return it->second->table;
}

void DatasetCache::Insert(const std::string& key, std::shared_ptr<const EngineTable> table,
                          std::uint64_t bytes) {
  if (bytes > capacity_) return;  // also covers the capacity == 0 (disabled) case
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    stats_.resident_bytes -= it->second->bytes;
    it->second->table = std::move(table);
    it->second->bytes = bytes;
    stats_.resident_bytes += bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, std::move(table), bytes});
    index_[key] = lru_.begin();
    stats_.resident_bytes += bytes;
    ++stats_.insertions;
  }
  EvictPastCapacityLocked();
  stats_.entries = lru_.size();
}

void DatasetCache::EvictPastCapacityLocked() {
  while (stats_.resident_bytes > capacity_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    stats_.resident_bytes -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

DatasetCache::Stats DatasetCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats snapshot = stats_;
  snapshot.entries = lru_.size();
  return snapshot;
}

void DatasetCache::RecordPagedBypass() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.bypassed_paged;
}

void DatasetCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  stats_.resident_bytes = 0;
  stats_.entries = 0;
}

std::string DatasetCache::CsvKey(const std::string& path, CsvFormat format,
                                 const std::string& schema_spec) {
  struct ::stat st{};
  if (::stat(path.c_str(), &st) != 0) return "";
  return "csv|" + std::string(CsvFormatName(format)) + "|" + schema_spec + "|" + path + "|" +
         std::to_string(static_cast<long long>(st.st_mtime)) + "|" +
         std::to_string(static_cast<long long>(st.st_size));
}

std::string DatasetCache::SyntheticKey(const DatasetSpec& resolved_cell) {
  return "syn|" + DatasetLabel(resolved_cell);
}

}  // namespace ldv
