#include "engine/artifact_cache.h"

#include <utility>

#include "common/schema.h"

namespace ldv {

std::shared_ptr<const void> ArtifactCache::LookupRaw(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return it->second->artifact;
}

void ArtifactCache::InsertRaw(const std::string& key, std::shared_ptr<const void> artifact,
                              std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (bytes > capacity_) return;  // also covers the capacity == 0 (disabled) case
  auto it = index_.find(key);
  if (it != index_.end()) {
    stats_.resident_bytes -= it->second->bytes;
    it->second->artifact = std::move(artifact);
    it->second->bytes = bytes;
    stats_.resident_bytes += bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, std::move(artifact), bytes});
    index_[key] = lru_.begin();
    stats_.resident_bytes += bytes;
    ++stats_.insertions;
  }
  EvictPastCapacityLocked();
  stats_.entries = lru_.size();
}

void ArtifactCache::EvictPastCapacityLocked() {
  while (stats_.resident_bytes > capacity_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    stats_.resident_bytes -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

std::shared_ptr<const GroupedTable> ArtifactCache::LookupGrouped(const std::string& key) {
  return std::static_pointer_cast<const GroupedTable>(LookupRaw(key));
}

std::shared_ptr<const std::vector<RowId>> ArtifactCache::LookupOrder(const std::string& key) {
  return std::static_pointer_cast<const std::vector<RowId>>(LookupRaw(key));
}

void ArtifactCache::InsertGrouped(const std::string& key,
                                  std::shared_ptr<const GroupedTable> grouped,
                                  std::uint64_t bytes) {
  InsertRaw(key, std::move(grouped), bytes);
}

void ArtifactCache::InsertOrder(const std::string& key,
                                std::shared_ptr<const std::vector<RowId>> order,
                                std::uint64_t bytes) {
  InsertRaw(key, std::move(order), bytes);
}

void ArtifactCache::SetCapacity(std::uint64_t capacity_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity_bytes;
  EvictPastCapacityLocked();
  stats_.entries = lru_.size();
}

ArtifactCache::Stats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats snapshot = stats_;
  snapshot.entries = lru_.size();
  return snapshot;
}

std::uint64_t ArtifactCache::capacity_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

void ArtifactCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  stats_.resident_bytes = 0;
  stats_.entries = 0;
}

std::string ArtifactCache::SchemaFingerprint(const Table& table) {
  std::string fp = "d=" + std::to_string(table.qi_count()) + ";dom=";
  for (AttrId a = 0; a < table.qi_count(); ++a) {
    if (a != 0) fp += ',';
    fp += std::to_string(table.schema().qi(a).domain_size);
  }
  fp += ";m=" + std::to_string(table.schema().sa_domain_size());
  return fp;
}

std::string ArtifactCache::GroupedKey(const std::string& dataset_key, const Table& table) {
  return "grouped|" + dataset_key + "|" + SchemaFingerprint(table);
}

std::string ArtifactCache::OrderKey(const std::string& dataset_key, const Table& table) {
  return "hilbert|" + dataset_key + "|" + SchemaFingerprint(table);
}

}  // namespace ldv
