#ifndef LDIV_ENGINE_ARTIFACT_CACHE_H_
#define LDIV_ENGINE_ARTIFACT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/grouped_table.h"
#include "common/table.h"
#include "common/types.h"

namespace ldv {

/// Cross-job cache of derived solver artifacts -- the GroupedTable
/// signature index and the sorted Hilbert row order -- generalizing the
/// DatasetCache pattern one level up the pipeline: a mutex-guarded LRU
/// under a byte budget, keyed by the dataset's content-identity cache key
/// plus a QI-schema fingerprint (both artifacts depend only on the data
/// and its schema, never on `l` or the algorithm). Entries hold shared
/// ownership, so an eviction only drops the cache's reference: daemon
/// workers and batch threads that pinned the artifact keep using it.
///
/// Cached GroupedTables must have released their arena reservation
/// (GroupedTable::ReleaseBudgetCharge) before insertion -- the process
/// MemoryBudget starts a fresh epoch per run, and a cached artifact must
/// not stay charged to the epoch that built it. The engine charges cache
/// residency to the *current* run's budget instead, with a reservation
/// scoped to the run.
class ArtifactCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t resident_bytes = 0;
    std::uint64_t entries = 0;
  };

  /// `capacity_bytes` == 0 disables caching (every Lookup misses).
  explicit ArtifactCache(std::uint64_t capacity_bytes) : capacity_(capacity_bytes) {}

  /// The cached grouping / order for a dataset key, or null on a miss.
  std::shared_ptr<const GroupedTable> LookupGrouped(const std::string& key);
  std::shared_ptr<const std::vector<RowId>> LookupOrder(const std::string& key);

  /// Cache an artifact (estimated at `bytes` resident) under its key,
  /// evicting least-recently-used entries past capacity. An entry larger
  /// than the whole capacity is not cached; re-inserting a key refreshes
  /// its recency.
  void InsertGrouped(const std::string& key, std::shared_ptr<const GroupedTable> grouped,
                     std::uint64_t bytes);
  void InsertOrder(const std::string& key, std::shared_ptr<const std::vector<RowId>> order,
                   std::uint64_t bytes);

  /// Re-sizes the byte budget, evicting past the new capacity. Runs
  /// serialize on the engine's run lock, so a per-job --artifact-cache
  /// override simply retunes the shared cache for the duration.
  void SetCapacity(std::uint64_t capacity_bytes);

  Stats stats() const;
  std::uint64_t capacity_bytes() const;
  void Clear();

  /// Full artifact keys: the artifact kind, the dataset's DatasetCache
  /// content key, and the QI-schema fingerprint.
  static std::string GroupedKey(const std::string& dataset_key, const Table& table);
  static std::string OrderKey(const std::string& dataset_key, const Table& table);

  /// Compact fingerprint of the table's QI schema (attribute count and
  /// per-attribute domain sizes) and SA domain -- everything the grouping
  /// and the Hilbert encode depend on beyond the row data itself.
  static std::string SchemaFingerprint(const Table& table);

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const void> artifact;
    std::uint64_t bytes = 0;
  };

  std::shared_ptr<const void> LookupRaw(const std::string& key);
  void InsertRaw(const std::string& key, std::shared_ptr<const void> artifact,
                 std::uint64_t bytes);
  void EvictPastCapacityLocked();

  mutable std::mutex mutex_;
  std::uint64_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  Stats stats_;
};

}  // namespace ldv

#endif  // LDIV_ENGINE_ARTIFACT_CACHE_H_
