#include "engine/report.h"

#include <cstdio>
#include <fstream>

#include "anonymity/release.h"
#include "common/csv.h"
#include "common/failpoint.h"

namespace ldv {

namespace {

void AppendJsonString(const std::string& text, std::string* out) {
  out->push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

// Shortest-ish locale-independent double rendering; %.9g keeps every
// metric digit the tests compare while "12.5" stays "12.5".
std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  return buf;
}

// Quotes one CSV cell (provenance labels contain commas).
std::string CsvQuote(const std::string& text) {
  std::string quoted = "\"";
  for (char c : text) {
    if (c == '"') {
      quoted += "\"\"";
    } else {
      quoted.push_back(c);
    }
  }
  quoted += "\"";
  return quoted;
}

bool WriteFile(const std::string& content, const std::string& path, std::string* error) {
  failpoint::Injection injection;
  if (failpoint::Check(failpoint::Site::kReportWrite, &injection)) {
    *error = failpoint::Describe(failpoint::Site::kReportWrite, injection,
                                 "cannot write '" + path + "'");
    return false;
  }
  std::ofstream out(path);
  if (out) out << content;
  // Close before checking: some failures (e.g. a full disk behind a
  // buffered stream) only surface at flush/close time.
  out.close();
  if (out.fail()) {
    *error = "cannot write '" + path + "'";
    return false;
  }
  return true;
}

}  // namespace

std::string RenderJsonReport(const JobResult& result, const ReportOptions& options) {
  std::string json;
  json += "{\n";
  json += "  \"ldiv_report_version\": 1,\n";
  json += "  \"job_count\": " + std::to_string(result.jobs.size()) + ",\n";
  if (options.include_seconds) {
    // An execution detail like the wall-clock fields: recorded only when
    // timings are, so --no-timings reports stay byte-identical across
    // thread budgets.
    json += "  \"threads\": " + std::to_string(result.threads) + ",\n";
  }

  json += "  \"tables\": [\n";
  for (std::size_t t = 0; t < result.tables.size(); ++t) {
    const EngineTable& input = *result.tables[t];
    json += "    {\"index\": " + std::to_string(t) + ", \"source\": ";
    AppendJsonString(input.source, &json);
    json += ", \"rows\": " + std::to_string(input.table.size());
    json += ", \"qi_attributes\": " + std::to_string(input.table.qi_count());
    json += ", \"schema\": ";
    AppendJsonString(input.table.schema().ToString(), &json);
    json += t + 1 < result.tables.size() ? "},\n" : "}\n";
  }
  json += "  ],\n";

  json += "  \"jobs\": [\n";
  for (std::size_t i = 0; i < result.jobs.size(); ++i) {
    const EngineJob& job = result.jobs[i];
    const AnonymizationOutcome& outcome = job.outcome;
    json += "    {\n";
    json += "      \"job\": " + std::to_string(i) + ",\n";
    json += "      \"table\": " + std::to_string(job.spec.table_index) + ",\n";
    json += "      \"algorithm\": ";
    AppendJsonString(AlgorithmName(job.spec.algorithm), &json);
    json += ",\n";
    json += "      \"methodology\": ";
    AppendJsonString(MethodologyName(outcome.methodology), &json);
    json += ",\n";
    json += "      \"l\": " + std::to_string(job.spec.l) + ",\n";
    json += std::string("      \"feasible\": ") + (outcome.feasible ? "true" : "false") + ",\n";
    json += "      \"stars\": " + std::to_string(outcome.stars) + ",\n";
    json += "      \"suppressed_tuples\": " + std::to_string(outcome.suppressed_tuples) + ",\n";
    json += "      \"groups\": " + std::to_string(outcome.group_stats.group_count) + ",\n";
    json += "      \"min_group\": " + std::to_string(outcome.group_stats.min_size) + ",\n";
    json += "      \"max_group\": " + std::to_string(outcome.group_stats.max_size) + ",\n";
    json += "      \"mean_group\": " + FormatDouble(outcome.group_stats.mean_size) + ",\n";
    json += "      \"kl_divergence\": " + FormatDouble(outcome.kl_divergence) + ",\n";
    json += "      \"specializations\": " + std::to_string(outcome.specializations);
    if (options.include_seconds) {
      json += ",\n      \"seconds\": " + FormatDouble(outcome.seconds);
    }
    json += "\n";
    json += i + 1 < result.jobs.size() ? "    },\n" : "    }\n";
  }
  json += "  ]\n";
  json += "}\n";
  return json;
}

std::string RenderMetricsCsv(const JobResult& result, const ReportOptions& options) {
  std::string csv =
      "job,table,source,algorithm,methodology,l,rows,feasible,stars,"
      "suppressed_tuples,groups,min_group,max_group,mean_group,kl_divergence,"
      "specializations";
  if (options.include_seconds) csv += ",seconds";
  csv += "\n";
  for (std::size_t i = 0; i < result.jobs.size(); ++i) {
    const EngineJob& job = result.jobs[i];
    const AnonymizationOutcome& outcome = job.outcome;
    const EngineTable& input = *result.tables[job.spec.table_index];
    csv += std::to_string(i) + "," + std::to_string(job.spec.table_index) + ",";
    csv += CsvQuote(input.source) + ",";
    csv += std::string(AlgorithmName(job.spec.algorithm)) + ",";
    csv += std::string(MethodologyName(outcome.methodology)) + ",";
    csv += std::to_string(job.spec.l) + ",";
    csv += std::to_string(input.table.size()) + ",";
    csv += std::string(outcome.feasible ? "true" : "false") + ",";
    csv += std::to_string(outcome.stars) + ",";
    csv += std::to_string(outcome.suppressed_tuples) + ",";
    csv += std::to_string(outcome.group_stats.group_count) + ",";
    csv += std::to_string(outcome.group_stats.min_size) + ",";
    csv += std::to_string(outcome.group_stats.max_size) + ",";
    csv += FormatDouble(outcome.group_stats.mean_size) + ",";
    csv += FormatDouble(outcome.kl_divergence) + ",";
    csv += std::to_string(outcome.specializations);
    if (options.include_seconds) {
      csv += ",";
      csv += FormatDouble(outcome.seconds);
    }
    csv += "\n";
  }
  return csv;
}

bool WriteJsonReport(const JobResult& result, const std::string& path,
                     const ReportOptions& options, std::string* error) {
  return WriteFile(RenderJsonReport(result, options), path, error);
}

bool WriteMetricsCsv(const JobResult& result, const std::string& path,
                     const ReportOptions& options, std::string* error) {
  return WriteFile(RenderMetricsCsv(result, options), path, error);
}

bool WriteReleaseForOutcome(const Table& table, const AnonymizationOutcome& outcome,
                            const std::string& stem, std::string* error) {
  if (!outcome.feasible) return true;

  if (outcome.generalized != nullptr) {
    std::string path = stem + ".csv";
    if (!WriteReleaseCsv(table, *outcome.generalized, path)) {
      *error = "cannot write '" + path + "'";
      return false;
    }
    return true;
  }

  // Anatomy pair: exact QI values linked to the sensitive table only
  // through bucket ids (Section 2's bucketization trade-off). Dictionary-
  // backed attributes decode to their labels through the same
  // DecodeCsvValue as the suppression-view releases.
  const Schema& schema = table.schema();
  std::string qit;
  for (std::size_t a = 0; a < schema.qi_count(); ++a) {
    qit += CsvEscapeCell(schema.qi(static_cast<AttrId>(a)).name) + ",";
  }
  qit += "Bucket\n";
  std::string st = "Bucket," + CsvEscapeCell(schema.sensitive().name) + ",Count\n";
  std::vector<std::uint32_t> sa_counts(schema.sa_domain_size(), 0);
  const Partition& buckets = outcome.partition;
  for (GroupId g = 0; g < buckets.group_count(); ++g) {
    for (RowId row : buckets.group(g)) {
      for (AttrId a = 0; a < table.qi_count(); ++a) {
        qit += DecodeCsvValue(schema.qi(a), table.qi(row, a)) + ",";
      }
      qit += std::to_string(g) + "\n";
      ++sa_counts[table.sa(row)];
    }
    for (SaValue v = 0; v < sa_counts.size(); ++v) {
      if (sa_counts[v] == 0) continue;
      st += std::to_string(g) + "," + DecodeCsvValue(schema.sensitive(), v) + "," +
            std::to_string(sa_counts[v]) + "\n";
      sa_counts[v] = 0;
    }
  }
  return WriteFile(qit, stem + ".csv", error) && WriteFile(st, stem + "_sa.csv", error);
}

std::optional<PipelineError> WriteJobOutputs(const JobSpec& spec, const JobResult& result,
                                             std::string* notices) {
  std::string error;
  if (!spec.emit_input.empty()) {
    // ResolveJobSpec guarantees a single-table grid when emit_input is
    // set, so tables.front() is the one input.
    if (!WriteTableCsv(result.tables.front()->table, spec.emit_input)) {
      return IoError("cannot write '" + spec.emit_input + "'");
    }
    if (notices != nullptr) *notices += "wrote input table to " + spec.emit_input + "\n";
  }

  // A raw (dictionary-coded) input serializes its dictionaries alongside
  // the releases so the codes stay machine-recoverable.
  if (!result.tables.empty() && result.tables.front()->table.schema().has_dictionaries()) {
    std::string dict_path = spec.out + "_dict.csv";
    if (!WriteDictionaryCsv(result.tables.front()->table.schema(), dict_path)) {
      return IoError("cannot write '" + dict_path + "'");
    }
    if (notices != nullptr) *notices += "wrote value dictionaries to " + dict_path + "\n";
  }

  // Releases: single-job runs always write one; sweeps write per-job
  // releases only on request (write_releases).
  const bool single = result.jobs.size() == 1;
  for (std::size_t i = 0; i < result.jobs.size(); ++i) {
    if (!single && !spec.write_releases) break;
    const EngineJob& job = result.jobs[i];
    std::string stem = single ? spec.out : spec.out + ".job" + std::to_string(i);
    const Table& table = result.tables[job.spec.table_index]->table;
    if (!WriteReleaseForOutcome(table, job.outcome, stem, &error)) return IoError(error);
  }

  ReportOptions report_options;
  report_options.include_seconds = spec.timings;
  if (!WriteJsonReport(result, spec.out + ".json", report_options, &error) ||
      !WriteMetricsCsv(result, spec.out + "_metrics.csv", report_options, &error)) {
    return IoError(error);
  }
  return std::nullopt;
}

}  // namespace ldv
