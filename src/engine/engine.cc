#include "engine/engine.h"

#include <sys/stat.h>

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <utility>

#include "common/failpoint.h"
#include "common/memory_budget.h"
#include "common/parallel.h"
#include "common/workspace.h"
#include "core/batch.h"
#include "data/dataset.h"
#include "engine/report.h"

namespace ldv {

namespace {

// Sizes the paged-ingestion machinery from the run's memory budget: the
// page cache gets roughly a quarter of the budget (clamped to [8, 256]
// frames) so staging pages, sort buffers, and grouping arenas keep the
// rest. LDIV_PAGE_BYTES overrides the page size (tests and the CI
// memory-capped leg set it tiny to force heavy eviction on small inputs).
PagedTableBuilder::Options PagedOptionsFromBudget() {
  PagedTableBuilder::Options paged;
  paged.budget = GlobalMemoryBudgetShared();
  if (const char* env = std::getenv("LDIV_PAGE_BYTES")) {
    char* end = nullptr;
    const unsigned long long bytes = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0' && bytes >= 64 && bytes % sizeof(std::uint32_t) == 0) {
      paged.page_bytes = static_cast<std::size_t>(bytes);
    }
  }
  const std::uint64_t budget = MemoryBudgetBytes();
  if (budget != 0) {
    const std::uint64_t frames = budget / 4 / paged.page_bytes;
    paged.cache_frames = static_cast<std::size_t>(
        std::clamp<std::uint64_t>(frames, 8, 256));
  }
  return paged;
}

// Resident-byte estimate for DatasetCache accounting: the columnar row
// data plus a small allowance for schema/dictionary storage.
std::uint64_t EstimateTableBytes(const Table& table) {
  return static_cast<std::uint64_t>(table.size()) * (table.qi_count() + 1) *
             sizeof(std::uint32_t) +
         4096;
}

// A budgeted run pages its input only when the in-RAM estimate would eat
// more than a quarter of the budget; smaller inputs load resident and
// cache normally (the bypass only ever protected paged tables' budget
// reservations from outliving their run). The pre-load estimates err
// high: 2x the CSV file size, or the synthetic grid's columnar bytes.
bool ShouldPage(std::uint64_t estimated_bytes) {
  const std::uint64_t budget = MemoryBudgetBytes();
  return budget == 0 || estimated_bytes > budget / 4;
}

std::uint64_t EstimateCsvBytes(const std::string& path) {
  struct ::stat st{};
  if (::stat(path.c_str(), &st) != 0) return ~std::uint64_t{0} / 8;  // unstatable: stay paged
  return 2 * static_cast<std::uint64_t>(st.st_size) + 4096;
}

std::uint64_t EstimateSyntheticBytes(const DatasetSpec& cell) {
  return static_cast<std::uint64_t>(cell.n) * (cell.d + 1) * sizeof(std::uint32_t) + 4096;
}

}  // namespace

Engine::Engine(EngineOptions options)
    : options_(options),
      cache_(options.cache_bytes),
      artifact_cache_(options.artifact_cache_bytes) {}

Expected<bool, PipelineError> Engine::MaterializeTables(const ResolvedJobSpec& resolved,
                                                        JobResult* result) {
  const JobSpec& spec = resolved.spec;
  const bool paged = MemoryBudgetBytes() != 0;
  const PagedTableBuilder::Options paged_options = PagedOptionsFromBudget();
  std::string error;
  if (!spec.input.empty()) {
    const Schema* schema = resolved.schema.has_value() ? &*resolved.schema : nullptr;
    const std::string source =
        (resolved.format == CsvFormat::kRaw ? "csv-raw:" : "csv:") + spec.input;
    if (paged && ShouldPage(EstimateCsvBytes(spec.input))) {
      // Truly paged tables bypass the cache: they hold reservations
      // against this run's process-global budget, which the next
      // SetMemoryBudget replaces. Budgeted inputs that fit in RAM fall
      // through to the normal cached load below.
      cache_.RecordPagedBypass();
      std::unique_ptr<PagedTable> table =
          LoadTableCsvPaged(spec.input, resolved.format, schema, paged_options, &error);
      if (table == nullptr) return IoError(error);
      if (table->size() == 0) return IoError("'" + spec.input + "' holds no data rows");
      auto entry = std::make_shared<EngineTable>(std::move(table));
      entry->source = source;
      result->tables.push_back(std::move(entry));
      return true;
    }
    const std::string key = DatasetCache::CsvKey(spec.input, resolved.format, spec.schema_spec);
    if (!key.empty()) {
      if (std::shared_ptr<const EngineTable> hit = cache_.Lookup(key)) {
        ++result->cache_hits;
        result->tables.push_back(std::move(hit));
        return true;
      }
      ++result->cache_misses;
    }
    std::optional<Table> table = LoadTableCsv(spec.input, resolved.format, schema, &error);
    if (!table) return IoError(error);
    if (table->empty()) return IoError("'" + spec.input + "' holds no data rows");
    auto entry = std::make_shared<EngineTable>(std::move(*table));
    entry->source = source;
    entry->cache_key = key;
    if (!key.empty()) cache_.Insert(key, entry, EstimateTableBytes(entry->table));
    result->tables.push_back(std::move(entry));
    return true;
  }

  // Synthetic grid: one table per (n, d) cell, n-major -- the job order
  // the report documents.
  for (std::uint64_t n : spec.ns) {
    for (std::uint64_t d : spec.ds) {
      DatasetSpec cell = spec.dataset;
      cell.n = static_cast<std::size_t>(n);
      cell.d = static_cast<std::size_t>(d);
      if (paged && ShouldPage(EstimateSyntheticBytes(cell))) {
        cache_.RecordPagedBypass();
        std::unique_ptr<PagedTable> table = GenerateDatasetPaged(cell, paged_options, &error);
        if (table == nullptr) return IoError(error);
        auto entry = std::make_shared<EngineTable>(std::move(table));
        entry->source = DatasetLabel(cell);
        result->tables.push_back(std::move(entry));
        continue;
      }
      const std::string key = DatasetCache::SyntheticKey(cell);
      if (std::shared_ptr<const EngineTable> hit = cache_.Lookup(key)) {
        ++result->cache_hits;
        result->tables.push_back(std::move(hit));
        continue;
      }
      ++result->cache_misses;
      std::optional<Table> table = GenerateDataset(cell, &error);
      if (!table) return IoError(error);
      auto entry = std::make_shared<EngineTable>(std::move(*table));
      entry->source = DatasetLabel(cell);
      entry->cache_key = key;
      cache_.Insert(key, entry, EstimateTableBytes(entry->table));
      result->tables.push_back(std::move(entry));
    }
  }
  return true;
}

std::uint64_t Engine::ResolveArtifacts(std::span<const RunSpec> specs, JobResult* result) {
  result->artifacts.assign(result->tables.size(), TableArtifacts{});
  std::vector<char> need_grouped(result->tables.size(), 0);
  std::vector<char> need_order(result->tables.size(), 0);
  for (const RunSpec& spec : specs) {
    if (AlgorithmUsesGroupedArtifact(spec.algorithm)) need_grouped[spec.table_index] = 1;
    if (AlgorithmUsesHilbertOrderArtifact(spec.algorithm)) need_order[spec.table_index] = 1;
  }

  std::uint64_t resident_bytes = 0;
  Workspace workspace;
  for (std::size_t i = 0; i < result->tables.size(); ++i) {
    if (need_grouped[i] == 0 && need_order[i] == 0) continue;
    const EngineTable& input = *result->tables[i];
    // Cross-run caching needs a content-identity key and an in-RAM table
    // (a paged table's artifacts are rebuilt per run like the table
    // itself); ineligible tables still resolve once per run, so every job
    // of a sweep shares the build either way.
    const bool eligible = !input.cache_key.empty() && input.paged == nullptr;
    TableArtifacts& artifacts = result->artifacts[i];

    if (need_grouped[i] != 0) {
      const std::string key =
          eligible ? ArtifactCache::GroupedKey(input.cache_key, input.table) : std::string();
      if (eligible) {
        artifacts.grouped = artifact_cache_.LookupGrouped(key);
        if (artifacts.grouped != nullptr) {
          ++result->artifact_hits;
        } else {
          ++result->artifact_misses;
        }
      }
      if (artifacts.grouped == nullptr) {
        auto grouped = std::make_shared<GroupedTable>(input.table, &workspace);
        // The build may have charged its arenas to THIS run's memory
        // budget; a cached artifact must never carry that reservation
        // into the next budget epoch. RunLocked re-charges the resident
        // bytes with a run-scoped reservation instead.
        grouped->ReleaseBudgetCharge();
        if (eligible) artifact_cache_.InsertGrouped(key, grouped, grouped->ApproxBytes());
        artifacts.grouped = std::move(grouped);
      }
      resident_bytes += artifacts.grouped->ApproxBytes();
    }

    if (need_order[i] != 0) {
      const std::string key =
          eligible ? ArtifactCache::OrderKey(input.cache_key, input.table) : std::string();
      if (eligible) {
        artifacts.hilbert_order = artifact_cache_.LookupOrder(key);
        if (artifacts.hilbert_order != nullptr) {
          ++result->artifact_hits;
        } else {
          ++result->artifact_misses;
        }
      }
      if (artifacts.hilbert_order == nullptr) {
        auto order = std::make_shared<std::vector<RowId>>();
        HilbertComputeOrder(input.table, &workspace, order.get());
        if (eligible) {
          artifact_cache_.InsertOrder(key, order, order->size() * sizeof(RowId));
        }
        artifacts.hilbert_order = std::move(order);
      }
      resident_bytes += artifacts.hilbert_order->size() * sizeof(RowId);
    }
  }
  return resident_bytes;
}

Expected<JobResult, PipelineError> Engine::RunLocked(const ResolvedJobSpec& resolved) {
  const JobSpec& spec = resolved.spec;
  JobResult result;
  // One budget for the whole run: the batch driver and the in-kernel
  // parallelism both draw from it (see src/common/parallel.h).
  SetThreadBudget(spec.threads);
  result.threads = ThreadBudget();
  // Likewise one memory budget (0 = unlimited): ingestion, grouping, and
  // the Hilbert sort all consult it through GlobalMemoryBudget().
  SetMemoryBudget(spec.memory_budget);
  Expected<bool, PipelineError> materialized = MaterializeTables(resolved, &result);
  if (!materialized.ok()) return materialized.error();
  if (result.tables.empty()) {
    return UsageError("n", "nothing to run: the (n, d) grid produced no input tables");
  }

  AnonymizerOptions algo_options;
  algo_options.compute_kl = spec.compute_kl;
  std::vector<RunSpec> specs =
      ExpandRunGrid(spec.algorithms, spec.ls, result.tables.size(), algo_options);
  result.jobs.reserve(specs.size());

  // Per-run ArtifactCache capacity: an explicit --artifact-cache wins;
  // otherwise a budgeted run clamps the engine default to a quarter of
  // its memory budget so cached artifacts stay within the headroom the
  // run's own working set leaves. Runs serialize on run_mutex_, so the
  // retune (and any eviction it forces) is race-free.
  std::uint64_t artifact_capacity = options_.artifact_cache_bytes;
  if (spec.artifact_cache != kArtifactCacheAuto) {
    artifact_capacity = spec.artifact_cache;
  } else if (spec.memory_budget != 0) {
    artifact_capacity = std::min(artifact_capacity, spec.memory_budget / 4);
  }
  artifact_cache_.SetCapacity(artifact_capacity);

  // Resolve the GroupedTable / Hilbert order once per distinct table --
  // the sweep's jobs share them -- and charge a budgeted run for the
  // bytes it now pins (cached artifacts carry no reservation of their
  // own; see GroupedTable::ReleaseBudgetCharge).
  const std::uint64_t artifact_bytes = ResolveArtifacts(specs, &result);
  MemoryReservation artifacts_reservation;
  if (MemoryBudgetBytes() != 0 && artifact_bytes != 0) {
    artifacts_reservation = MemoryReservation(GlobalMemoryBudgetShared(), artifact_bytes);
  }

  if (specs.size() == 1 && !spec.sweep) {
    // Single invocation: run inline so errors and timings stay on the
    // calling thread.
    const RunSpec& run = specs.front();
    Workspace workspace;
    const TableArtifacts& artifacts = result.artifacts[run.table_index];
    AnonymizationOutcome outcome =
        AlgorithmRegistry::Global()
            .Create(run.algorithm, run.options)
            ->Run(result.tables[run.table_index]->table, run.l, &workspace,
                  artifacts.empty() ? nullptr : &artifacts);
    result.jobs.push_back({run, std::move(outcome)});
    return result;
  }

  std::vector<const Table*> tables;
  tables.reserve(result.tables.size());
  for (const std::shared_ptr<const EngineTable>& input : result.tables) {
    tables.push_back(&input->table);
  }
  // BatchOptions::threads stays 0: the driver follows the budget set
  // above, splitting it between job-level workers and inner kernels.
  std::vector<AnonymizationOutcome> outcomes =
      AnonymizeBatch(ToBatchJobs(specs, tables, result.artifacts));
  for (std::size_t i = 0; i < specs.size(); ++i) {
    result.jobs.push_back({specs[i], std::move(outcomes[i])});
  }
  return result;
}

Expected<JobResult, PipelineError> Engine::Run(const JobSpec& spec) {
  Expected<ResolvedJobSpec, PipelineError> resolved = ResolveJobSpec(spec);
  if (!resolved.ok()) return resolved.error();
  std::lock_guard<std::mutex> lock(run_mutex_);
  // This is the I/O unwind boundary: a spill, page, sort, or ingestion
  // syscall failure anywhere below (including inside parallel kernels)
  // throws IoFailure, RAII reclaims the spill files and budget
  // reservations on the way up, and the caller sees a typed io error --
  // never an abort.
  try {
    return RunLocked(*resolved);
  } catch (const IoFailure& failure) {
    return IoError(failure.what());
  }
}

Expected<ExecuteSummary, PipelineError> Engine::Execute(const JobSpec& spec,
                                                        std::string* notices) {
  Expected<ResolvedJobSpec, PipelineError> resolved = ResolveJobSpec(spec);
  if (!resolved.ok()) return resolved.error();
  // Hold the run lock through output writing so paged reads never race a
  // following run. (Lifetimes need no lock: a paged table shares ownership
  // of the budget epoch it charged, so it may safely outlive the run.)
  std::lock_guard<std::mutex> lock(run_mutex_);
  Expected<JobResult, PipelineError> result = [&]() -> Expected<JobResult, PipelineError> {
    // Same unwind boundary as Run(): typed io error instead of an abort.
    try {
      return RunLocked(*resolved);
    } catch (const IoFailure& failure) {
      return IoError(failure.what());
    }
  }();
  if (!result.ok()) return result.error();
  std::optional<PipelineError> write_error = WriteJobOutputs(resolved->spec, *result, notices);
  if (write_error.has_value()) return *write_error;

  ExecuteSummary summary;
  summary.job_count = result->jobs.size();
  for (const EngineJob& job : result->jobs) {
    if (!job.outcome.feasible) ++summary.infeasible;
  }
  summary.threads = result->threads;
  summary.cache_hits = result->cache_hits;
  summary.cache_misses = result->cache_misses;
  summary.artifact_hits = result->artifact_hits;
  summary.artifact_misses = result->artifact_misses;
  // A sweep treats infeasible cells as data; a single run fails loudly.
  summary.exit_code = (summary.job_count == 1 && summary.infeasible > 0)
                          ? ExitCodeFor(PipelineErrorCode::kInfeasible)
                          : 0;
  return summary;
}

}  // namespace ldv
