#ifndef LDIV_ENGINE_ERROR_H_
#define LDIV_ENGINE_ERROR_H_

#include <string>

namespace ldv {

/// Failure taxonomy of the engine and daemon layers. Every recoverable
/// failure in the pipeline is one of these; the process exit codes the
/// CLI documents ("0 ok, 1 usage error, 2 infeasible instance, 3 I/O
/// error, 4 unavailable") derive from this enum through ExitCodeFor --
/// one table instead of string matching at every front-end.
enum class PipelineErrorCode {
  kUsage = 1,        ///< malformed or inconsistent job specification
  kInfeasible = 2,   ///< the instance admits no l-diverse release
  kIo = 3,           ///< load/generation/write failure
  kUnavailable = 4,  ///< daemon backpressure, expired deadline, no server
};

/// A typed pipeline failure: the code drives the exit status and the
/// daemon's wire error, `field` names the offending JobSpec key / CLI
/// flag when one is attributable ("l", "schema", ...; empty otherwise),
/// and `message` is the complete human-readable one-liner.
struct PipelineError {
  PipelineErrorCode code = PipelineErrorCode::kUsage;
  std::string field;
  std::string message;
};

/// The process exit status for `code` -- the single exit-code table.
inline int ExitCodeFor(PipelineErrorCode code) { return static_cast<int>(code); }

/// The stable wire/display name of `code`.
inline const char* PipelineErrorCodeName(PipelineErrorCode code) {
  switch (code) {
    case PipelineErrorCode::kUsage:
      return "usage";
    case PipelineErrorCode::kInfeasible:
      return "infeasible";
    case PipelineErrorCode::kIo:
      return "io";
    case PipelineErrorCode::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

inline PipelineError UsageError(std::string field, std::string message) {
  return {PipelineErrorCode::kUsage, std::move(field), std::move(message)};
}

inline PipelineError IoError(std::string message) {
  return {PipelineErrorCode::kIo, "", std::move(message)};
}

}  // namespace ldv

#endif  // LDIV_ENGINE_ERROR_H_
