#ifndef LDIV_ENGINE_DATASET_CACHE_H_
#define LDIV_ENGINE_DATASET_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "data/dataset.h"

namespace ldv {

struct EngineTable;

/// Cross-job cache of materialized input tables, the piece that lets a
/// long-running daemon skip straight to the solve on repeat traffic: a
/// mutex-guarded LRU keyed by content identity (CSV inputs by
/// path + mtime + size + format + schema, synthetic inputs by their fully
/// resolved generator label), holding shared ownership of immutable
/// EngineTables up to a byte capacity. Eviction drops the cache's
/// reference only -- jobs still holding the table keep it alive.
///
/// Only in-RAM tables are cached: a --memory-budget run that pages its
/// table holds page-cache and staging reservations against the budget
/// epoch of *that* run, and serving it to later runs would pin spill files
/// and misattribute its resident bytes, so paged tables are rebuilt per
/// run (the bypass is counted in Stats::bypassed_paged). Budgeted runs
/// whose table fits in RAM cache normally.
class DatasetCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t resident_bytes = 0;
    std::uint64_t entries = 0;
    /// Materializations that skipped the cache because the table was truly
    /// paged (see RecordPagedBypass); the only remaining bypass reason.
    std::uint64_t bypassed_paged = 0;
  };

  /// `capacity_bytes` == 0 disables caching (every Lookup misses).
  explicit DatasetCache(std::uint64_t capacity_bytes) : capacity_(capacity_bytes) {}

  /// The cached table for `key`, or null on a miss. Counts hit/miss.
  std::shared_ptr<const EngineTable> Lookup(const std::string& key);

  /// Caches `table` (estimated at `bytes` resident) under `key`, evicting
  /// least-recently-used entries past capacity. An entry larger than the
  /// whole capacity is not cached. Re-inserting an existing key refreshes
  /// its recency.
  void Insert(const std::string& key, std::shared_ptr<const EngineTable> table,
              std::uint64_t bytes);

  Stats stats() const;
  std::uint64_t capacity_bytes() const { return capacity_; }
  void Clear();

  /// Records a materialization that bypassed the cache because the table
  /// came up paged (paged tables are rebuilt per run; see the class note).
  void RecordPagedBypass();

  /// Content-identity key of a CSV input: format + schema + the file's
  /// path, mtime and size, so an edited or replaced file misses instead of
  /// serving stale rows. Returns "" (uncacheable; caller loads directly)
  /// when the file cannot be stat'ed -- the loader then reports the real
  /// open error.
  static std::string CsvKey(const std::string& path, CsvFormat format,
                            const std::string& schema_spec);

  /// Content-identity key of a synthetic table: the resolved generator
  /// label (name, n, seed, d), which fully determines the rows.
  static std::string SyntheticKey(const DatasetSpec& resolved_cell);

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const EngineTable> table;
    std::uint64_t bytes = 0;
  };

  void EvictPastCapacityLocked();

  const std::uint64_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  Stats stats_;
};

}  // namespace ldv

#endif  // LDIV_ENGINE_DATASET_CACHE_H_
