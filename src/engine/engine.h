#ifndef LDIV_ENGINE_ENGINE_H_
#define LDIV_ENGINE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/expected.h"
#include "common/paged_column.h"
#include "common/table.h"
#include "core/artifacts.h"
#include "core/run_spec.h"
#include "engine/artifact_cache.h"
#include "engine/dataset_cache.h"
#include "engine/error.h"
#include "engine/job_spec.h"

namespace ldv {

/// One materialized input table plus where it came from, for reports.
/// Under --memory-budget the row data lives in `paged` (memory-mapped
/// spill files) and `table` is the borrowed resident() view over it; the
/// algorithms and report writers consume `table` either way, so outputs
/// are byte-identical across the two storage modes.
struct EngineTable {
  Table table;
  /// Keeps the spill files and mappings alive behind a borrowed `table`;
  /// null for ordinary in-RAM inputs.
  std::unique_ptr<PagedTable> paged;
  /// Provenance label, e.g. "csv:micro.csv" or "sal(n=10000, seed=1, d=3)".
  std::string source;
  /// The DatasetCache content-identity key this table was materialized
  /// under; "" when uncacheable (unstatable CSV) or paged. Derived
  /// artifacts reuse it as the dataset half of their ArtifactCache key.
  std::string cache_key;

  explicit EngineTable(Table t) : table(std::move(t)) {}
  explicit EngineTable(std::unique_ptr<PagedTable> p)
      : table(p->resident()), paged(std::move(p)) {}
};

/// One completed engine job: its spec and the algorithm outcome.
struct EngineJob {
  RunSpec spec;
  AnonymizationOutcome outcome;
};

/// Everything one Engine::Run produced, in deterministic job order (the
/// ExpandRunGrid order: table-major, then algorithm, then l). Tables are
/// shared with the DatasetCache; entries may alias across JobResults.
struct JobResult {
  std::vector<std::shared_ptr<const EngineTable>> tables;
  /// Pre-resolved solver artifacts, parallel to `tables` (empty structs
  /// for tables whose jobs consume none). Shared with the ArtifactCache;
  /// holding them here keeps every artifact alive for the whole run even
  /// if the cache evicts it mid-flight.
  std::vector<TableArtifacts> artifacts;
  std::vector<EngineJob> jobs;
  /// The resolved thread budget the run executed under. An execution
  /// detail like wall-clock: reports include it only alongside timings,
  /// so --no-timings output stays byte-identical across budgets.
  unsigned threads = 1;
  /// DatasetCache traffic of this run's input materialization (0/0 when
  /// every table came up paged and bypassed the cache).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// ArtifactCache traffic of this run's GroupedTable / Hilbert-order
  /// resolution (0/0 when no job consumes artifacts or the tables were
  /// cache-ineligible).
  std::uint64_t artifact_hits = 0;
  std::uint64_t artifact_misses = 0;
};

/// Byte-compare-friendly summary of an Execute call, the payload a daemon
/// reply carries back to the submitting client.
struct ExecuteSummary {
  std::size_t job_count = 0;
  std::size_t infeasible = 0;
  unsigned threads = 1;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t artifact_hits = 0;
  std::uint64_t artifact_misses = 0;
  /// The one-shot CLI's exit status for this run (0 ok, 2 when a
  /// single-job run was infeasible) -- `ldiv submit` exits with it so a
  /// scripted submit is a drop-in for a one-shot invocation.
  int exit_code = 0;
};

struct EngineOptions {
  /// DatasetCache capacity; 0 disables cross-job input caching.
  std::uint64_t cache_bytes = 256u << 20;
  /// ArtifactCache capacity (GroupedTable + Hilbert-order memoization);
  /// 0 disables cross-job artifact caching. A job can override per run
  /// with JobSpec::artifact_cache; budgeted jobs without an override are
  /// clamped to a quarter of their memory budget.
  std::uint64_t artifact_cache_bytes = 256u << 20;
};

/// The reusable anonymization engine behind every front-end: one object
/// that validates JobSpecs (ResolveJobSpec), materializes inputs through a
/// cross-job DatasetCache, and runs the algorithms x (l, n, d) grid
/// through the existing inline/AnonymizeBatch machinery. The one-shot CLI
/// is a thin adapter over Run; the daemon's workers call Execute.
///
/// Runs serialize on an internal mutex: the thread and memory budgets are
/// process-global (SetThreadBudget / SetMemoryBudget), so two concurrent
/// solves would race on them. Job-level concurrency belongs to the
/// admission queue in front of the engine, intra-job parallelism to the
/// per-run thread budget.
class Engine {
 public:
  explicit Engine(EngineOptions options = {});

  /// Validates, materializes and solves `spec`; no outputs are written.
  /// Infeasible jobs are not an error (reported with feasible = false).
  ///
  /// Budget caveat: a budgeted (memory_budget != 0) result holds paged
  /// tables charged against the process-global budget of THIS run; drop
  /// the JobResult before the next budgeted Run (the CLI's sequential
  /// run-then-write-then-exit does so naturally). Execute encapsulates
  /// the safe order for long-running callers.
  Expected<JobResult, PipelineError> Run(const JobSpec& spec);

  /// Run + write every output the spec asks for (release(s), reports,
  /// dictionary sidecar, emit-input), destroying the JobResult before
  /// returning -- the whole job lifetime stays under the run lock, which
  /// makes it safe for a daemon to interleave budgeted jobs. Notice lines
  /// ("wrote value dictionaries to ...") append to `*notices` when
  /// non-null.
  Expected<ExecuteSummary, PipelineError> Execute(const JobSpec& spec,
                                                  std::string* notices = nullptr);

  DatasetCache& dataset_cache() { return cache_; }
  ArtifactCache& artifact_cache() { return artifact_cache_; }

 private:
  Expected<JobResult, PipelineError> RunLocked(const ResolvedJobSpec& resolved);
  Expected<bool, PipelineError> MaterializeTables(const ResolvedJobSpec& resolved,
                                                  JobResult* result);
  /// Resolves the GroupedTable / Hilbert-order artifacts each distinct
  /// table's jobs consume -- once per table, through the ArtifactCache
  /// when the table is cache-eligible (non-empty cache_key, not paged).
  /// Returns the total resident bytes of the artifacts now pinned by
  /// `result`, so RunLocked can charge them to a budgeted run.
  std::uint64_t ResolveArtifacts(std::span<const RunSpec> specs, JobResult* result);

  std::mutex run_mutex_;
  EngineOptions options_;
  DatasetCache cache_;
  ArtifactCache artifact_cache_;
};

}  // namespace ldv

#endif  // LDIV_ENGINE_ENGINE_H_
