#ifndef LDIV_ENGINE_JOB_SPEC_H_
#define LDIV_ENGINE_JOB_SPEC_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/expected.h"
#include "common/schema.h"
#include "core/run_spec.h"
#include "data/dataset.h"
#include "engine/error.h"

namespace ldv {

/// The wire-format version SerializeJobSpec emits and ParseJobSpec
/// accepts. Bump on any incompatible key change.
inline constexpr std::uint32_t kJobSpecVersion = 1;

/// JobSpec::artifact_cache sentinel: let the engine pick the ArtifactCache
/// capacity (its configured default, clamped to a quarter of the job's
/// memory budget when one is set).
inline constexpr std::uint64_t kArtifactCacheAuto = ~std::uint64_t{0};

/// One complete engine job, independent of any front-end: where the input
/// comes from (a CSV path or a synthetic algorithms x (l, n, d) grid),
/// what to run, under which thread/memory budgets, and which outputs to
/// write. This is what `ldiv submit` serializes onto the daemon socket
/// and what the one-shot CLI normalizes its flags into -- both paths meet
/// in Engine::Run, so outputs are byte-identical by construction.
///
/// A JobSpec is *syntactically* well-formed data; ResolveJobSpec performs
/// the one semantic validation pass (shared by the CLI parser and the
/// daemon) and is the only place those rules live.
struct JobSpec {
  std::vector<Algorithm> algorithms = {Algorithm::kTpPlus};
  std::vector<std::uint32_t> ls = {2};

  /// CSV input path; empty means synthetic data.
  std::string input;
  CsvFormat format = CsvFormat::kAuto;
  /// Schema of a coded CSV input in ParseSchemaSpec grammar; empty = none.
  std::string schema_spec;

  /// Synthetic-input spec; `ns` x `ds` sweep its row count and QI prefix
  /// dimensionality, one table per (n, d) cell, n-major.
  DatasetSpec dataset;
  std::vector<std::uint64_t> ns = {10000};
  std::vector<std::uint64_t> ds = {3};

  /// Output stem: releases at <out>.csv (+ <out>_sa.csv), reports at
  /// <out>.json and <out>_metrics.csv.
  std::string out = "ldiv_out";
  bool sweep = false;
  bool write_releases = false;
  bool compute_kl = true;
  bool timings = true;
  std::uint32_t threads = 0;        ///< 0 = auto (hardware concurrency)
  std::uint64_t memory_budget = 0;  ///< bytes; 0 = unlimited (in-RAM paths)
  /// ArtifactCache capacity for this run, in bytes: kArtifactCacheAuto
  /// (the default) lets the engine pick, 0 disables cross-job artifact
  /// caching, anything else retunes the shared cache for the run.
  std::uint64_t artifact_cache = kArtifactCacheAuto;
  std::string emit_input;           ///< also write the input table here

  /// Daemon scheduling fields, ignored by the one-shot CLI: higher
  /// priority dequeues first; a non-zero deadline (milliseconds from
  /// admission) expires the job with an error if it is still queued when
  /// it elapses.
  std::uint32_t priority = 0;
  std::uint64_t deadline_ms = 0;
};

/// Renders `spec` as versioned `key = value` lines (the FlagSet config
/// grammar). ParseJobSpec(SerializeJobSpec(s)) reconstructs an equivalent
/// spec; keys holding their default value are omitted.
std::string SerializeJobSpec(const JobSpec& spec);

/// Parses SerializeJobSpec output (or any hand-written spec in the same
/// grammar). Rejects an unknown key, a missing or unsupported version,
/// and any malformed value, naming the offending key in the error field.
Expected<JobSpec, PipelineError> ParseJobSpec(std::string_view text);

/// A JobSpec that passed the single semantic validation pass: the CSV
/// format is resolved (never kAuto), the schema is parsed, and the
/// (n, d) grid is known to be generable. The embedded spec is normalized
/// (CSV inputs force a single-cell grid).
struct ResolvedJobSpec {
  JobSpec spec;
  /// Resolved input encoding; meaningful only when spec.input is set.
  CsvFormat format = CsvFormat::kRaw;
  /// Parsed schema of a coded CSV input; disengaged otherwise.
  std::optional<Schema> schema;
};

/// THE validation pass over a JobSpec -- every semantic rule the pipeline
/// enforces lives here and nowhere else: non-empty algorithm/l lists,
/// l >= 1, schema/format consistency (including kAuto sniffing through
/// ResolveCsvFormat), dataset grid-cell validity, the output stem, the
/// memory-budget floor, and the emit-input single-table requirement.
/// Errors carry the offending JobSpec key in `field` and render the same
/// one-line messages the CLI always printed.
Expected<ResolvedJobSpec, PipelineError> ResolveJobSpec(const JobSpec& spec);

}  // namespace ldv

#endif  // LDIV_ENGINE_JOB_SPEC_H_
