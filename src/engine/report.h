#ifndef LDIV_ENGINE_REPORT_H_
#define LDIV_ENGINE_REPORT_H_

#include <optional>
#include <string>

#include "engine/engine.h"

namespace ldv {

/// Report rendering knobs.
struct ReportOptions {
  /// Include wall-clock fields. Disabled (--no-timings) the reports are
  /// byte-deterministic, which golden tests and CI diffs rely on.
  bool include_seconds = true;
};

/// Renders the machine-readable JSON report: a versioned header, the input
/// tables with provenance, and one entry per job in job order carrying the
/// uniform utility metrics of AnonymizationOutcome. Key order is fixed and
/// number formatting locale-independent, so equal results render equal
/// bytes.
std::string RenderJsonReport(const JobResult& result, const ReportOptions& options = {});

/// The same rows as CSV (one line per job), for spreadsheet pipelines.
std::string RenderMetricsCsv(const JobResult& result, const ReportOptions& options = {});

/// Writes RenderJsonReport / RenderMetricsCsv to `path`. Returns false
/// with `*error` set on I/O failure.
bool WriteJsonReport(const JobResult& result, const std::string& path,
                     const ReportOptions& options, std::string* error);
bool WriteMetricsCsv(const JobResult& result, const std::string& path,
                     const ReportOptions& options, std::string* error);

/// Writes the anonymized release of one job. Suppression-view outcomes
/// (everything but Anatomy) land at <stem>.csv in the WriteReleaseCsv
/// format; a bucketization lands as the Anatomy pair -- the exact-QI table
/// at <stem>.csv with a Bucket column and the sensitive table at
/// <stem>_sa.csv as (Bucket, SA, Count) rows. Infeasible outcomes write
/// nothing and succeed. Returns false with `*error` set on I/O failure.
bool WriteReleaseForOutcome(const Table& table, const AnonymizationOutcome& outcome,
                            const std::string& stem, std::string* error);

/// Writes everything `spec` asks for from a completed run, in the order
/// the one-shot CLI always has: the emit-input copy, the dictionary
/// sidecar of a raw input, the release(s) (single runs always write one;
/// sweeps only with write_releases, at <out>.jobK stems), and the
/// JSON/CSV reports. One "wrote ..." notice line per side artifact
/// appends to `*notices` (may be null) for the front-end to print.
/// Returns the I/O error that stopped the writes, or nullopt on success.
std::optional<PipelineError> WriteJobOutputs(const JobSpec& spec, const JobResult& result,
                                             std::string* notices);

}  // namespace ldv

#endif  // LDIV_ENGINE_REPORT_H_
