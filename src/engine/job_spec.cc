#include "engine/job_spec.h"

#include <array>
#include <optional>
#include <utility>

#include "common/flags.h"
#include "common/memory_budget.h"
#include "common/schema_spec.h"

namespace ldv {

namespace {

constexpr std::array<std::string_view, 21> kJobSpecKeys = {
    "version", "algo",    "l",       "input",          "format",
    "schema",  "dataset", "seed",    "n",              "d",
    "out",     "sweep",   "write-releases", "kl",      "timings",
    "threads", "memory-budget",      "artifact-cache", "emit-input",
    "priority", "deadline-ms",
};

template <typename T>
std::string JoinList(const std::vector<T>& values) {
  std::string joined;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) joined += ",";
    joined += std::to_string(values[i]);
  }
  return joined;
}

void AppendKey(std::string_view key, std::string_view value, std::string* out) {
  *out += std::string(key) + " = " + std::string(value) + "\n";
}

std::string_view TrimSpecView(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) text.remove_prefix(1);
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t' || text.back() == '\r')) {
    text.remove_suffix(1);
  }
  return text;
}

/// The longest key in kJobSpecKeys is 14 bytes; 128 bounds what a hostile
/// payload can make the parser buffer per key while staying far above any
/// legitimate spec.
constexpr std::size_t kMaxJobSpecKeyBytes = 128;

// Strict pre-pass over a serialized spec, ahead of the lenient
// ParseConfigText. The config parser tolerates what a hand-edited file
// needs (first-occurrence-wins duplicates, arbitrary value bytes); a spec
// that crossed a socket gets no such benefit of the doubt -- a NUL would
// truncate inside C-string sinks, and a silently dropped duplicate `out`
// would hide where a job writes. Lines are numbered the way
// ParseConfigText numbers them, so errors position the same way.
std::optional<PipelineError> CheckJobSpecText(std::string_view text) {
  if (text.find('\0') != std::string_view::npos) {
    return UsageError("", "jobspec: payload contains a NUL byte");
  }
  std::vector<std::string> seen;
  std::size_t line_number = 0;
  while (!text.empty()) {
    const std::size_t eol = text.find('\n');
    std::string_view line = text.substr(0, eol);
    text.remove_prefix(eol == std::string_view::npos ? text.size() : eol + 1);
    ++line_number;
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = TrimSpecView(line);
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) continue;  // ParseConfigText positions this error
    const std::string key(TrimSpecView(line.substr(0, eq)));
    if (key.size() > kMaxJobSpecKeyBytes) {
      return UsageError("", "jobspec:" + std::to_string(line_number) + ": key of " +
                                std::to_string(key.size()) + " bytes exceeds the " +
                                std::to_string(kMaxJobSpecKeyBytes) + "-byte limit");
    }
    for (const std::string& earlier : seen) {
      if (earlier == key) {
        return UsageError(key, "jobspec:" + std::to_string(line_number) + ": duplicate key '" +
                                   key + "' (the second value would be silently ignored)");
      }
    }
    seen.push_back(key);
  }
  return std::nullopt;
}

}  // namespace

std::string SerializeJobSpec(const JobSpec& spec) {
  std::string text;
  AppendKey("version", std::to_string(kJobSpecVersion), &text);

  std::string algos;
  for (std::size_t i = 0; i < spec.algorithms.size(); ++i) {
    if (i != 0) algos += ",";
    algos += AlgorithmName(spec.algorithms[i]);
  }
  AppendKey("algo", algos, &text);
  AppendKey("l", JoinList(spec.ls), &text);

  if (!spec.input.empty()) {
    AppendKey("input", spec.input, &text);
    if (spec.format != CsvFormat::kAuto) AppendKey("format", CsvFormatName(spec.format), &text);
    if (!spec.schema_spec.empty()) AppendKey("schema", spec.schema_spec, &text);
  } else {
    AppendKey("dataset", spec.dataset.name, &text);
    if (spec.dataset.seed != 0) AppendKey("seed", std::to_string(spec.dataset.seed), &text);
    AppendKey("n", JoinList(spec.ns), &text);
    AppendKey("d", JoinList(spec.ds), &text);
  }

  AppendKey("out", spec.out, &text);
  if (spec.sweep) AppendKey("sweep", "true", &text);
  if (spec.write_releases) AppendKey("write-releases", "true", &text);
  if (!spec.compute_kl) AppendKey("kl", "false", &text);
  if (!spec.timings) AppendKey("timings", "false", &text);
  if (spec.threads != 0) AppendKey("threads", std::to_string(spec.threads), &text);
  if (spec.memory_budget != 0) {
    AppendKey("memory-budget", std::to_string(spec.memory_budget), &text);
  }
  if (spec.artifact_cache != kArtifactCacheAuto) {
    AppendKey("artifact-cache", std::to_string(spec.artifact_cache), &text);
  }
  if (!spec.emit_input.empty()) AppendKey("emit-input", spec.emit_input, &text);
  if (spec.priority != 0) AppendKey("priority", std::to_string(spec.priority), &text);
  if (spec.deadline_ms != 0) AppendKey("deadline-ms", std::to_string(spec.deadline_ms), &text);
  return text;
}

Expected<JobSpec, PipelineError> ParseJobSpec(std::string_view text) {
  if (std::optional<PipelineError> strict = CheckJobSpecText(text)) return *strict;
  FlagSet keys;
  std::string error;
  if (!keys.ParseConfigText(text, "jobspec", &error)) return UsageError("", error);

  std::vector<std::string> unknown = keys.UnknownKeys(kJobSpecKeys);
  if (!unknown.empty()) {
    return UsageError(unknown.front(), "unknown job spec key '" + unknown.front() + "'");
  }
  if (!keys.Has("version")) {
    return UsageError("version", "job spec is missing its 'version' key");
  }
  std::uint32_t version = 0;
  if (!keys.GetUint32("version", 0, &version, &error)) return UsageError("version", error);
  if (version != kJobSpecVersion) {
    return UsageError("version", "unsupported job spec version " + std::to_string(version) +
                                     " (this engine speaks version " +
                                     std::to_string(kJobSpecVersion) + ")");
  }

  JobSpec spec;
  std::string algo_list;
  if (!keys.GetString("algo", "tp+", &algo_list, &error)) return UsageError("algo", error);
  if (!ParseAlgorithmList(algo_list, &spec.algorithms, &error)) return UsageError("algo", error);
  constexpr std::array<std::uint32_t, 1> kDefaultL = {2};
  if (!keys.GetUint32List("l", kDefaultL, &spec.ls, &error)) return UsageError("l", error);

  if (!keys.GetString("input", "", &spec.input, &error)) return UsageError("input", error);
  std::string format_text;
  if (!keys.GetString("format", "auto", &format_text, &error)) return UsageError("format", error);
  if (!ParseCsvFormat(format_text, &spec.format, &error)) return UsageError("format", error);
  if (!keys.GetString("schema", "", &spec.schema_spec, &error)) return UsageError("schema", error);

  if (!keys.GetString("dataset", "sal", &spec.dataset.name, &error)) {
    return UsageError("dataset", error);
  }
  if (!keys.GetUint64("seed", 0, &spec.dataset.seed, &error)) return UsageError("seed", error);
  constexpr std::array<std::uint64_t, 1> kDefaultN = {10000};
  constexpr std::array<std::uint64_t, 1> kDefaultD = {3};
  if (!keys.GetUint64List("n", kDefaultN, &spec.ns, &error)) return UsageError("n", error);
  if (!keys.GetUint64List("d", kDefaultD, &spec.ds, &error)) return UsageError("d", error);

  if (!keys.GetString("out", "ldiv_out", &spec.out, &error)) return UsageError("out", error);
  if (!keys.GetBool("sweep", false, &spec.sweep, &error)) return UsageError("sweep", error);
  if (!keys.GetBool("write-releases", false, &spec.write_releases, &error)) {
    return UsageError("write-releases", error);
  }
  if (!keys.GetBool("kl", true, &spec.compute_kl, &error)) return UsageError("kl", error);
  if (!keys.GetBool("timings", true, &spec.timings, &error)) return UsageError("timings", error);
  if (!keys.GetUint32("threads", 0, &spec.threads, &error)) return UsageError("threads", error);
  if (!keys.GetUint64("memory-budget", 0, &spec.memory_budget, &error)) {
    return UsageError("memory-budget", error);
  }
  if (!keys.GetUint64("artifact-cache", kArtifactCacheAuto, &spec.artifact_cache, &error)) {
    return UsageError("artifact-cache", error);
  }
  if (!keys.GetString("emit-input", "", &spec.emit_input, &error)) {
    return UsageError("emit-input", error);
  }
  if (!keys.GetUint32("priority", 0, &spec.priority, &error)) return UsageError("priority", error);
  if (!keys.GetUint64("deadline-ms", 0, &spec.deadline_ms, &error)) {
    return UsageError("deadline-ms", error);
  }
  return spec;
}

Expected<ResolvedJobSpec, PipelineError> ResolveJobSpec(const JobSpec& spec) {
  if (spec.algorithms.empty() || spec.ls.empty()) {
    return UsageError("algo", "nothing to run: the algorithm and l lists must be non-empty");
  }
  for (std::uint32_t l : spec.ls) {
    if (l == 0) return UsageError("l", "--l: the privacy parameter must be at least 1");
  }

  ResolvedJobSpec resolved;
  resolved.spec = spec;
  std::string error;
  if (!spec.input.empty()) {
    if (!spec.schema_spec.empty()) {
      if (spec.format == CsvFormat::kRaw) {
        return UsageError("schema",
                          "--format=raw infers the schema from the file's labels; drop --schema");
      }
      resolved.schema = ParseSchemaSpec(spec.schema_spec, &error);
      if (!resolved.schema) return UsageError("schema", error);
    } else if (spec.format == CsvFormat::kCoded) {
      return UsageError(
          "schema", "--format=coded requires --schema (e.g. --schema=Age:79,Gender:2|Income:50)");
    }
    // Resolve kAuto up front so a coded-looking file without a schema is a
    // usage error, not a silent raw ingestion of digit strings; detection
    // I/O failures resolve to raw and the loader's own open error reports
    // through the I/O exit code.
    if (!ResolveCsvFormat(spec.input, spec.format, resolved.schema.has_value(), &resolved.format,
                          &error)) {
      return UsageError("format", error);
    }
    // A CSV input is one table: normalize the grid so downstream
    // table-count logic has a single rule.
    resolved.spec.ns = {0};
    resolved.spec.ds = {0};
  } else {
    if (!spec.schema_spec.empty()) {
      return UsageError(
          "schema", "--schema only applies to --input CSV data (synthetic datasets carry their own)");
    }
    if (spec.format != CsvFormat::kAuto) {
      return UsageError("format", "--format only applies to --input CSV data");
    }
    if (spec.ns.empty() || spec.ds.empty()) {
      return UsageError("n", "nothing to run: the (n, d) grid produced no input tables");
    }
    // Validate every (n, d) grid cell up front: spec mistakes are usage
    // errors, not pipeline failures.
    for (std::uint64_t n : spec.ns) {
      for (std::uint64_t d : spec.ds) {
        DatasetSpec cell = spec.dataset;
        cell.n = static_cast<std::size_t>(n);
        cell.d = static_cast<std::size_t>(d);
        if (!ResolveDatasetSpec(cell, &error).has_value()) return UsageError("dataset", error);
      }
    }
  }

  if (resolved.spec.out.empty()) return UsageError("out", "--out must not be empty");
  if (spec.memory_budget != 0 && spec.memory_budget < (8u << 20)) {
    return UsageError("memory-budget",
                      "--memory-budget: " + FormatByteSize(spec.memory_budget) +
                          " is below the 8M floor (page staging alone needs a few MiB)");
  }
  if (!spec.emit_input.empty()) {
    const std::size_t table_count =
        spec.input.empty() ? spec.ns.size() * spec.ds.size() : std::size_t{1};
    if (table_count != 1) {
      return UsageError("emit-input", "--emit-input needs a single input table; the (n, d) grid has " +
                                          std::to_string(table_count));
    }
  }
  return resolved;
}

}  // namespace ldv
