// Command-line anonymization tool: reads a coded CSV microdata file, runs
// the chosen algorithm, and writes the l-diverse release (stars as '*').
// The algorithm is any registry name (tp, tp+, hilbert, mondrian, anatomy,
// tds). The schema is given on the command line as the QI domain sizes
// plus the SA domain size. With no input file, a demo dataset is
// generated.
//
//   build/examples/anonymize_csv --l 4 --algo tp+ \
//       --schema 79,2,9,50 --input micro.csv --output release.csv
//
// Exit codes: 0 success, 1 usage error, 2 infeasible instance, 3 I/O error.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "anonymity/eligibility.h"
#include "anonymity/generalization.h"
#include "anonymity/release.h"
#include "common/csv.h"
#include "core/algorithm.h"
#include "data/acs_generator.h"
#include "data/acs_schema.h"

using namespace ldv;

namespace {

struct CliOptions {
  std::uint32_t l = 2;
  const Anonymizer* algorithm = nullptr;  // defaults to TP+ in main
  std::vector<std::size_t> domains;       // QI domains then SA domain
  std::string input;
  std::string output = "release.csv";
};

bool ParseUint(const char* s, std::uint64_t* out) {
  if (s == nullptr || *s == '\0') return false;
  std::uint64_t v = 0;
  for (; *s; ++s) {
    if (*s < '0' || *s > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(*s - '0');
  }
  *out = v;
  return true;
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--l") {
      std::uint64_t v;
      if (!ParseUint(next(), &v) || v == 0) return false;
      options->l = static_cast<std::uint32_t>(v);
    } else if (arg == "--algo") {
      const char* a = next();
      if (a == nullptr) return false;
      options->algorithm = AlgorithmRegistry::Global().Find(a);
      if (options->algorithm == nullptr) {
        std::fprintf(stderr, "unknown algorithm '%s'; registered:", a);
        for (const Anonymizer* algo : AlgorithmRegistry::Global().All()) {
          std::fprintf(stderr, " %s", algo->name());
        }
        std::fprintf(stderr, "\n");
        return false;
      }
    } else if (arg == "--schema") {
      const char* spec = next();
      if (spec == nullptr) return false;
      options->domains.clear();
      std::string token;
      for (const char* p = spec;; ++p) {
        if (*p == ',' || *p == '\0') {
          std::uint64_t v;
          if (!ParseUint(token.c_str(), &v) || v == 0) return false;
          options->domains.push_back(static_cast<std::size_t>(v));
          token.clear();
          if (*p == '\0') break;
        } else {
          token.push_back(*p);
        }
      }
      if (options->domains.size() < 2) return false;
    } else if (arg == "--input") {
      const char* p = next();
      if (p == nullptr) return false;
      options->input = p;
    } else if (arg == "--output") {
      const char* p = next();
      if (p == nullptr) return false;
      options->output = p;
    } else {
      return false;
    }
  }
  return true;
}

Schema SchemaFromDomains(const std::vector<std::size_t>& domains) {
  std::vector<Attribute> qi;
  for (std::size_t i = 0; i + 1 < domains.size(); ++i) {
    qi.push_back(Attribute{"Q" + std::to_string(i + 1), domains[i]});
  }
  return Schema(std::move(qi), Attribute{"S", domains.back()});
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!ParseArgs(argc, argv, &options)) {
    std::fprintf(stderr,
                 "usage: %s [--l L] [--algo tp|tp+|hilbert|mondrian|anatomy|tds]\n"
                 "          [--schema d1,d2,...,sa] [--input micro.csv]\n"
                 "          [--output release.csv]\n",
                 argv[0]);
    return 1;
  }
  if (options.algorithm == nullptr) {
    options.algorithm = &AlgorithmRegistry::Global().Get(Algorithm::kTpPlus);
  }
  if (options.algorithm->methodology() == Methodology::kBucketization) {
    std::fprintf(stderr,
                 "%s publishes a bucketization, not a suppression table; the CSV\n"
                 "release format of this tool does not apply\n",
                 options.algorithm->name());
    return 1;
  }

  Table table = [&] {
    if (!options.input.empty()) {
      if (options.domains.empty()) {
        std::fprintf(stderr, "--input requires --schema\n");
        std::exit(1);
      }
      auto loaded = ReadTableCsv(SchemaFromDomains(options.domains), options.input);
      if (!loaded) {
        std::fprintf(stderr, "failed to read %s\n", options.input.c_str());
        std::exit(3);
      }
      return std::move(*loaded);
    }
    std::fprintf(stderr, "no --input: generating a 10k-row demo extract (SAL-3)\n");
    return GenerateSal(10000, 1).ProjectQi({kAge, kGender, kEducation});
  }();

  std::fprintf(stderr, "input: %zu rows, schema %s, max feasible l = %u\n", table.size(),
               table.schema().ToString().c_str(), MaxFeasibleL(table));
  AnonymizationOutcome outcome = options.algorithm->Run(table, options.l);
  if (!outcome.feasible) {
    std::fprintf(stderr, "infeasible: the table is not %u-eligible\n", options.l);
    return 2;
  }
  std::fprintf(stderr, "%s: %llu stars, %llu suppressed tuples, %zu QI-groups, KL %.3f, %.3fs\n",
               options.algorithm->name(),
               static_cast<unsigned long long>(outcome.stars),
               static_cast<unsigned long long>(outcome.suppressed_tuples),
               outcome.partition.group_count(), outcome.kl_divergence, outcome.seconds);

  if (!WriteReleaseCsv(table, *outcome.generalized, options.output)) {
    std::fprintf(stderr, "cannot write %s\n", options.output.c_str());
    return 3;
  }
  std::fprintf(stderr, "wrote %s\n", options.output.c_str());
  return 0;
}
