// End-to-end publication pipeline (Section 5.6's deployment guidance):
// 1. coarsen large-domain QI attributes HIPAA-style (dates -> years, ZIP ->
//    3-digit prefixes) before anonymization,
// 2. run TP+ on the coarsened table,
// 3. export the generalized release to CSV for off-the-shelf statistics
//    packages (the suppression-format advantage of Section 2).
//
//   build/examples/hybrid_pipeline [output.csv]

#include <cstdio>
#include <string>

#include "anonymity/generalization.h"
#include "anonymity/release.h"
#include "common/csv.h"
#include "common/rng.h"
#include "core/algorithm.h"

using namespace ldv;

namespace {

// Raw microdata with large-domain QIs: BirthYearMonth (600 values ~ 50
// years x 12 months) and ZipCode (1000 5-digit-style codes).
Table RawMicrodata(std::size_t n) {
  Schema schema({Attribute{"BirthYearMonth", 600}, Attribute{"ZipCode", 1000},
                 Attribute{"Gender", 2}},
                Attribute{"Condition", 12});
  Table table(schema);
  Rng rng(7);
  ZipfSampler zip(1000, 1.0);
  // Skew kept below 1/l so the 4-diverse release stays feasible.
  ZipfSampler condition(12, 0.5);
  std::vector<Value> row(3);
  for (std::size_t i = 0; i < n; ++i) {
    row[0] = rng.Below(600);
    row[1] = zip.Sample(rng);
    row[2] = rng.Below(2);
    table.AppendRow(row, condition.Sample(rng));
  }
  return table;
}

// The HIPAA-style preprocessing of Section 5.6: keep only the year of the
// birth date and the first "digits" of the ZIP code.
Table CoarsenForHipaa(const Table& raw) {
  Schema schema({Attribute{"BirthYear", 50}, Attribute{"Zip3", 100}, Attribute{"Gender", 2}},
                raw.schema().sensitive());
  Table out(schema);
  out.Reserve(raw.size());
  std::vector<Value> row(3);
  for (RowId r = 0; r < raw.size(); ++r) {
    row[0] = raw.qi(r, 0) / 12;  // year-month -> year
    row[1] = raw.qi(r, 1) / 10;  // 5-digit -> 3-digit prefix
    row[2] = raw.qi(r, 2);
    out.AppendRow(row, raw.sa(r));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string output = argc > 1 ? argv[1] : "anonymized_release.csv";
  const std::uint32_t l = 4;

  Table raw = RawMicrodata(30000);
  std::printf("Raw microdata: %s, %zu rows\n", raw.schema().ToString().c_str(), raw.size());

  // Without coarsening, nearly every tuple has a unique QI signature and
  // TP suppresses almost everything (the Section 5.6 degradation).
  const Anonymizer& tpp = AlgorithmRegistry::Global().Get(Algorithm::kTpPlus);
  AnonymizationOutcome direct = tpp.Run(raw, l);
  if (!direct.feasible) {
    std::printf("raw data is not %u-eligible; aborting\n", l);
    return 1;
  }
  std::printf("TP+ directly on raw data: %llu stars, %llu of %zu tuples suppressed\n",
              static_cast<unsigned long long>(direct.stars),
              static_cast<unsigned long long>(direct.suppressed_tuples), raw.size());

  Table coarse = CoarsenForHipaa(raw);
  std::printf("\nAfter HIPAA coarsening: %s\n", coarse.schema().ToString().c_str());
  AnonymizationOutcome refined = tpp.Run(coarse, l);
  if (!refined.feasible) {
    std::printf("coarsened data is not %u-eligible; aborting\n", l);
    return 1;
  }
  std::printf("TP+ on coarsened data:   %llu stars, %llu of %zu tuples suppressed\n",
              static_cast<unsigned long long>(refined.stars),
              static_cast<unsigned long long>(refined.suppressed_tuples), coarse.size());

  // Export the release in the suppression format of Section 2: starred
  // cells are emitted as '*', which statistics packages read as missing
  // values. The outcome already carries the generalized view.
  if (WriteReleaseCsv(coarse, *refined.generalized, output)) {
    std::printf("\nWrote the l-diverse release (%zu QI-groups) to %s\n",
                refined.partition.group_count(), output.c_str());
  }

  std::printf("\nPipeline summary: coarsening cut suppression from %.1f%% to %.1f%% of tuples.\n",
              100.0 * static_cast<double>(direct.suppressed_tuples) / raw.size(),
              100.0 * static_cast<double>(refined.suppressed_tuples) / coarse.size());
  return 0;
}
