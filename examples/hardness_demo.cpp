// Walks through the Section 4 NP-hardness reduction on the paper's own
// Figure 1 example: builds the microdata table from the 3DM instance,
// verifies its structural properties, solves the 3DM, and shows that the
// induced generalization attains the 3n(d-1) star target -- while the
// exhaustive solver confirms no 3-diverse generalization does better.
//
//   build/examples/hardness_demo

#include <cstdio>

#include "anonymity/eligibility.h"
#include "anonymity/generalization.h"
#include "hardness/exact_solver.h"
#include "hardness/reduction.h"
#include "hardness/three_dim_matching.h"

using namespace ldv;

int main() {
  ThreeDmInstance instance = PaperFigure1Instance();
  std::printf("3DM instance (Figure 1a): n = %u, %u points\n", instance.n, instance.d());
  for (std::size_t i = 0; i < instance.points.size(); ++i) {
    const Point3& p = instance.points[i];
    std::printf("  p%zu = (%u, %u, %u)\n", i + 1, p.a + 1, p.b + 1, p.c + 1);
  }

  const std::uint32_t m = 8;
  Table table = BuildReductionTable(instance, m);
  std::printf("\nReduction table T (Figure 1b): %zu rows, %zu QI attributes, m = %u\n",
              table.size(), table.qi_count(), m);
  for (RowId r = 0; r < table.size(); ++r) {
    std::printf("  row %2u: ", r + 1);
    for (AttrId a = 0; a < table.qi_count(); ++a) std::printf("%u ", table.qi(r, a));
    std::printf("| B = %u\n", table.sa(r) + 1);
  }
  std::printf("Structural properties hold: %s\n",
              CheckReductionProperties(table, instance, m) ? "yes" : "NO");

  auto matching = Solve3Dm(instance);
  if (!matching) {
    std::printf("3DM answer: no\n");
    return 0;
  }
  std::printf("\n3DM answer: yes, matching = {");
  for (std::uint32_t idx : *matching) std::printf(" p%u", idx + 1);
  std::printf(" }\n");

  Partition induced = PartitionFromMatching(instance, *matching);
  std::uint64_t induced_stars = PartitionStarCount(table, induced);
  std::uint64_t target = ReductionTargetStars(instance.n, instance.d());
  std::printf("Induced 3-diverse generalization: %llu stars (target 3n(d-1) = %llu)\n",
              static_cast<unsigned long long>(induced_stars),
              static_cast<unsigned long long>(target));
  std::printf("Induced partition is 3-diverse: %s\n",
              IsLDiverse(table, induced, 3) ? "yes" : "NO");

  ExactStarResult optimal = ExactStarMinimization(table, 3);
  std::printf("Exhaustive optimum over all 3-diverse generalizations: %llu stars\n",
              static_cast<unsigned long long>(optimal.stars));
  std::printf("Lemma 3 verified: optimum %s the target exactly.\n",
              optimal.stars == target ? "hits" : "MISSES");
  return 0;
}
