// Hospital scenario from the paper's introduction: a hospital releases
// patient records to medical researchers and must defeat linking attacks
// without the homogeneity problem of plain k-anonymity. Demonstrates why
// l-diversity is needed and how every algorithm in the registry compares
// on medical-style data (small QI domains, skewed diagnosis column -- the
// Section 5.6 sweet spot for TP).
//
//   build/examples/hospital_release

#include <cstdio>

#include "anonymity/eligibility.h"
#include "anonymity/generalization.h"
#include "anonymity/k_anonymity.h"
#include "common/rng.h"
#include "common/text_table.h"
#include "core/algorithm.h"

using namespace ldv;

namespace {

// Synthetic hospital microdata: AgeBand(16), Gender(2), Ward(12),
// AdmissionMonth(12); Diagnosis(20), skewed like real ICD frequency data.
Table HospitalData(std::size_t n) {
  Schema schema({Attribute{"AgeBand", 16}, Attribute{"Gender", 2}, Attribute{"Ward", 12},
                 Attribute{"AdmissionMonth", 12}},
                Attribute{"Diagnosis", 20});
  Table table(schema);
  Rng rng(99);
  ZipfSampler diagnosis(20, 0.9);
  std::vector<Value> row(4);
  for (std::size_t i = 0; i < n; ++i) {
    Value age = rng.Below(16);
    row[0] = age;
    row[1] = rng.Below(2);
    // Ward correlates with age (geriatric vs pediatric wards).
    row[2] = (rng.Below(4) + age * 12 / 16 * 3) % 12;
    row[3] = rng.Below(12);
    table.AppendRow(row, diagnosis.Sample(rng));
  }
  return table;
}

}  // namespace

int main() {
  Table records = HospitalData(20000);
  std::printf("Hospital microdata: %zu records, schema %s\n\n", records.size(),
              records.schema().ToString().c_str());

  const AlgorithmRegistry& registry = AlgorithmRegistry::Global();

  // Step 1: show the homogeneity problem. A 4-anonymous partition built by
  // grouping identical QI signatures (padding small groups together) can
  // still leak diagnoses.
  AnonymizationOutcome k_anon_like = registry.Get(Algorithm::kHilbert).Run(records, 1);
  std::printf("k-anonymity-style release (no SA constraint):\n");
  std::printf("  homogeneous-group tuple fraction: %.2f%%\n\n",
              100.0 * HomogeneousTupleFraction(records, k_anon_like.partition));

  // Step 2: l-diverse releases, one row per registered algorithm.
  TextTable report(
      {"algorithm", "l", "stars", "suppressed", "homog. fraction", "KL", "seconds"});
  for (std::uint32_t l : {3u, 5u}) {
    for (const Anonymizer* algo : registry.All()) {
      AnonymizationOutcome outcome = algo->Run(records, l);
      if (!outcome.feasible) continue;
      report.AddRow({algo->name(), std::to_string(l), std::to_string(outcome.stars),
                     std::to_string(outcome.suppressed_tuples),
                     FormatDouble(HomogeneousTupleFraction(records, outcome.partition), 4),
                     FormatDouble(outcome.kl_divergence, 3),
                     FormatDouble(outcome.seconds, 3)});
    }
  }
  std::printf("l-diverse releases:\n%s\n", report.ToString().c_str());
  std::printf(
      "Every l-diverse release has homogeneous fraction 0: no adversary can\n"
      "infer a diagnosis with confidence above 1/l, even after locating the\n"
      "patient's QI-group (Section 1 threat model).\n");
  return 0;
}
