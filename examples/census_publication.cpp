// Census-bureau scenario: publish an l-diverse extract of an ACS-style
// microdata table, sweeping the privacy parameter and reporting the
// utility/privacy trade-off exactly the way a data publisher would
// evaluate it (Section 6's methodology). All measurements come straight
// off the uniform AnonymizationOutcome; the l-sweep runs as one batch
// through the parallel driver.
//
//   build/examples/census_publication [n]

#include <cstdio>
#include <cstdlib>

#include "common/text_table.h"
#include "core/batch.h"
#include "data/acs_generator.h"
#include "data/acs_schema.h"

using namespace ldv;

int main(int argc, char** argv) {
  std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50000;
  std::printf("Generating a synthetic ACS salary extract with %zu records...\n", n);
  Table sal = GenerateSal(n, 1);

  // A publisher would release a low-dimensional projection; here
  // Age x Gender x Education x WorkClass with Income as the SA.
  Table released = sal.ProjectQi({kAge, kGender, kEducation, kWorkClass});
  std::printf("Projection: %s\n\n", released.schema().ToString().c_str());

  std::vector<BatchJob> jobs;
  for (std::uint32_t l = 2; l <= 10; l += 2) {
    jobs.push_back(BatchJob{&released, l, Algorithm::kTpPlus, AnonymizerOptions{}});
  }
  std::vector<AnonymizationOutcome> outcomes = AnonymizeBatch(jobs);

  TextTable report({"l", "stars", "suppressed", "groups", "avg group", "KL", "seconds"});
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const AnonymizationOutcome& outcome = outcomes[i];
    if (!outcome.feasible) {
      std::printf("l = %u infeasible (SA too skewed)\n", jobs[i].l);
      continue;
    }
    report.AddRow({std::to_string(jobs[i].l), std::to_string(outcome.stars),
                   std::to_string(outcome.suppressed_tuples),
                   std::to_string(outcome.group_stats.group_count),
                   FormatDouble(outcome.group_stats.mean_size, 1),
                   FormatDouble(outcome.kl_divergence, 3),
                   FormatDouble(outcome.seconds, 3)});
  }
  std::printf("TP+ utility/privacy sweep:\n%s\n", report.ToString().c_str());
  std::printf(
      "Reading guide: stars and KL-divergence rise with l (stronger privacy,\n"
      "less utility); pick the largest l whose utility is still acceptable.\n"
      "(The sweep ran in parallel, so per-l seconds may include core\n"
      "contention; Figures 4-6 are the contention-free timing benches.)\n");
  return 0;
}
