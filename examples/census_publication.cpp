// Census-bureau scenario: publish an l-diverse extract of an ACS-style
// microdata table, sweeping the privacy parameter and reporting the
// utility/privacy trade-off exactly the way a data publisher would
// evaluate it (Section 6's methodology).
//
//   build/examples/census_publication [n]

#include <cstdio>
#include <cstdlib>

#include "anonymity/generalization.h"
#include "common/text_table.h"
#include "core/anonymizer.h"
#include "data/acs_generator.h"
#include "data/acs_schema.h"
#include "metrics/group_stats.h"
#include "metrics/kl_divergence.h"

using namespace ldv;

int main(int argc, char** argv) {
  std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50000;
  std::printf("Generating a synthetic ACS salary extract with %zu records...\n", n);
  Table sal = GenerateSal(n, 1);

  // A publisher would release a low-dimensional projection; here
  // Age x Gender x Education x WorkClass with Income as the SA.
  Table released = sal.ProjectQi({kAge, kGender, kEducation, kWorkClass});
  std::printf("Projection: %s\n\n", released.schema().ToString().c_str());

  TextTable report({"l", "stars", "suppressed", "groups", "avg group", "KL", "seconds"});
  for (std::uint32_t l = 2; l <= 10; l += 2) {
    AnonymizationOutcome outcome = Anonymize(released, l, Algorithm::kTpPlus);
    if (!outcome.feasible) {
      std::printf("l = %u infeasible (SA too skewed)\n", l);
      continue;
    }
    GeneralizedTable generalized(released, outcome.partition);
    GroupSizeStats stats = ComputeGroupSizeStats(outcome.partition);
    report.AddRow({std::to_string(l), std::to_string(outcome.stars),
                   std::to_string(outcome.suppressed_tuples), std::to_string(stats.group_count),
                   FormatDouble(stats.mean_size, 1),
                   FormatDouble(KlDivergenceSuppression(released, generalized), 3),
                   FormatDouble(outcome.seconds, 3)});
  }
  std::printf("TP+ utility/privacy sweep:\n%s\n", report.ToString().c_str());
  std::printf(
      "Reading guide: stars and KL-divergence rise with l (stronger privacy,\n"
      "less utility); pick the largest l whose utility is still acceptable.\n");
  return 0;
}
