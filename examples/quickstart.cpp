// Quickstart: anonymize the paper's running example (Table 1) with every
// algorithm in the registry and print the generalized tables.
//
//   build/examples/quickstart

#include <cstdio>

#include "anonymity/eligibility.h"
#include "anonymity/generalization.h"
#include "core/algorithm.h"

using namespace ldv;

namespace {

// The paper's Table 1: 10 hospital records.
// Age {<30, 30-49, >=50}, Gender {M, F}, Education {Master, Bachelor,
// HighSchool}; Disease {HIV, pneumonia, bronchitis, dyspepsia}.
Table HospitalMicrodata() {
  Schema schema({Attribute{"Age", 3}, Attribute{"Gender", 2}, Attribute{"Education", 3}},
                Attribute{"Disease", 4});
  Table table(schema);
  const Value rows[10][4] = {
      {0, 0, 0, 0}, {0, 0, 0, 0}, {0, 0, 1, 1}, {1, 0, 1, 2}, {1, 1, 1, 1},
      {1, 1, 1, 2}, {1, 1, 1, 2}, {1, 1, 1, 1}, {2, 1, 2, 3}, {2, 1, 2, 1},
  };
  for (const auto& row : rows) {
    std::vector<Value> qi(row, row + 3);
    table.AppendRow(qi, row[3]);
  }
  return table;
}

}  // namespace

int main() {
  Table microdata = HospitalMicrodata();
  const std::uint32_t l = 2;

  std::printf("Microdata: n = %zu, d = %zu, m = %zu distinct diseases\n", microdata.size(),
              microdata.qi_count(), microdata.DistinctSaCount());
  std::printf("Max feasible l: %u\n\n", MaxFeasibleL(microdata));

  for (const Anonymizer* algorithm : AlgorithmRegistry::Global().All()) {
    AnonymizationOutcome outcome = algorithm->Run(microdata, l);
    if (!outcome.feasible) {
      std::printf("%s: infeasible\n", algorithm->name());
      continue;
    }
    std::printf("--- %s (l = %u, %s) ---\n", algorithm->name(), l,
                MethodologyName(outcome.methodology));
    std::printf("stars = %llu, suppressed tuples = %llu, groups = %zu, KL = %.3f\n",
                static_cast<unsigned long long>(outcome.stars),
                static_cast<unsigned long long>(outcome.suppressed_tuples),
                outcome.partition.group_count(), outcome.kl_divergence);
    if (outcome.generalized != nullptr) {
      std::printf("%s\n", outcome.generalized->ToString(microdata).c_str());
    } else {
      std::printf("(QI values published exactly; SA linked through %zu buckets)\n\n",
                  outcome.partition.group_count());
    }
  }
  return 0;
}
