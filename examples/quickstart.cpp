// Quickstart: anonymize the paper's running example (Table 1) with every
// algorithm and print the generalized tables.
//
//   build/examples/quickstart

#include <cstdio>

#include "anonymity/eligibility.h"
#include "anonymity/generalization.h"
#include "core/anonymizer.h"

using namespace ldv;

namespace {

// The paper's Table 1: 10 hospital records.
// Age {<30, 30-49, >=50}, Gender {M, F}, Education {Master, Bachelor,
// HighSchool}; Disease {HIV, pneumonia, bronchitis, dyspepsia}.
Table HospitalMicrodata() {
  Schema schema({Attribute{"Age", 3}, Attribute{"Gender", 2}, Attribute{"Education", 3}},
                Attribute{"Disease", 4});
  Table table(schema);
  const Value rows[10][4] = {
      {0, 0, 0, 0}, {0, 0, 0, 0}, {0, 0, 1, 1}, {1, 0, 1, 2}, {1, 1, 1, 1},
      {1, 1, 1, 2}, {1, 1, 1, 2}, {1, 1, 1, 1}, {2, 1, 2, 3}, {2, 1, 2, 1},
  };
  for (const auto& row : rows) {
    std::vector<Value> qi(row, row + 3);
    table.AppendRow(qi, row[3]);
  }
  return table;
}

}  // namespace

int main() {
  Table microdata = HospitalMicrodata();
  const std::uint32_t l = 2;

  std::printf("Microdata: n = %zu, d = %zu, m = %zu distinct diseases\n", microdata.size(),
              microdata.qi_count(), microdata.DistinctSaCount());
  std::printf("Max feasible l: %u\n\n", MaxFeasibleL(microdata));

  for (Algorithm algorithm : {Algorithm::kTp, Algorithm::kTpPlus, Algorithm::kHilbert}) {
    AnonymizationOutcome outcome = Anonymize(microdata, l, algorithm);
    if (!outcome.feasible) {
      std::printf("%s: infeasible\n", AlgorithmName(algorithm));
      continue;
    }
    std::printf("--- %s (l = %u) ---\n", AlgorithmName(algorithm), l);
    std::printf("stars = %llu, suppressed tuples = %llu, groups = %zu\n",
                static_cast<unsigned long long>(outcome.stars),
                static_cast<unsigned long long>(outcome.suppressed_tuples),
                outcome.partition.group_count());
    GeneralizedTable generalized(microdata, outcome.partition);
    std::printf("%s\n", generalized.ToString(microdata).c_str());
  }
  return 0;
}
