// Reproduces Figure 5: computation time vs d (l = 4), log-scale in the
// paper; we print the raw seconds.

#include <cstdio>

#include "bench_util.h"
#include "common/text_table.h"
#include "core/anonymizer.h"

namespace ldv {
namespace {

void RunFamily(const char* name, const Table& source, const bench::BenchConfig& config) {
  const std::uint32_t l = 4;
  TextTable table({"d", "Hilbert(s)", "TP(s)", "TP+(s)"});
  for (std::size_t d = 1; d <= 7; ++d) {
    double sums[3] = {0, 0, 0};
    std::size_t feasible = 0;
    for (const Table& t : bench::Family(source, d, config)) {
      AnonymizationOutcome hil = Anonymize(t, l, Algorithm::kHilbert);
      AnonymizationOutcome tp = Anonymize(t, l, Algorithm::kTp);
      AnonymizationOutcome tpp = Anonymize(t, l, Algorithm::kTpPlus);
      if (!hil.feasible || !tp.feasible || !tpp.feasible) continue;
      ++feasible;
      sums[0] += hil.seconds;
      sums[1] += tp.seconds;
      sums[2] += tpp.seconds;
    }
    if (feasible == 0) continue;
    table.AddRow({FormatDouble(static_cast<double>(d), 0), FormatDouble(sums[0] / feasible, 4),
                  FormatDouble(sums[1] / feasible, 4), FormatDouble(sums[2] / feasible, 4)});
  }
  std::printf("Figure 5 (%s-d, l = 4): computation time vs d\n%s\n", name,
              table.ToString().c_str());
}

}  // namespace
}  // namespace ldv

int main(int argc, char** argv) {
  ldv::bench::BenchConfig config = ldv::bench::ParseConfig(argc, argv);
  ldv::bench::PrintHeader("Figure 5: computation time vs d (l = 4)", config);
  ldv::bench::Datasets data = ldv::bench::LoadDatasets(config);
  ldv::RunFamily("SAL", data.sal, config);
  ldv::RunFamily("OCC", data.occ, config);
  return 0;
}
