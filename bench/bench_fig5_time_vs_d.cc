// Reproduces Figure 5: computation time vs d (l = 4), log-scale in the
// paper; we print the raw seconds. Sequential KL-free registry instances,
// like Figure 4.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/text_table.h"
#include "core/algorithm.h"

namespace ldv {
namespace {

void RunFamily(const char* name, const Table& source, const bench::BenchConfig& config) {
  const std::uint32_t l = 4;
  std::vector<std::unique_ptr<Anonymizer>> algos = bench::TimingAlgorithms();
  TextTable table({"d", "Hilbert(s)", "TP(s)", "TP+(s)"});
  for (std::size_t d = 1; d <= 7; ++d) {
    std::vector<double> sums(algos.size(), 0.0);
    std::size_t feasible = 0;
    for (const Table& t : bench::Family(source, d, config)) {
      std::vector<double> seconds(algos.size());
      bool all_feasible = true;
      for (std::size_t a = 0; a < algos.size(); ++a) {
        AnonymizationOutcome outcome = algos[a]->Run(t, l);
        all_feasible = all_feasible && outcome.feasible;
        seconds[a] = outcome.seconds;
      }
      if (!all_feasible) continue;
      ++feasible;
      for (std::size_t a = 0; a < algos.size(); ++a) sums[a] += seconds[a];
    }
    if (feasible == 0) continue;
    table.AddRow({FormatDouble(static_cast<double>(d), 0), FormatDouble(sums[0] / feasible, 4),
                  FormatDouble(sums[1] / feasible, 4), FormatDouble(sums[2] / feasible, 4)});
  }
  std::printf("Figure 5 (%s-d, l = 4): computation time vs d\n%s\n", name,
              table.ToString().c_str());
}

}  // namespace
}  // namespace ldv

int main(int argc, char** argv) {
  ldv::bench::BenchConfig config = ldv::bench::ParseConfig(argc, argv);
  ldv::bench::PrintHeader("Figure 5: computation time vs d (l = 4)", config);
  ldv::bench::Datasets data = ldv::bench::LoadDatasets(config);
  ldv::RunFamily("SAL", data.sal, config);
  ldv::RunFamily("OCC", data.occ, config);
  return 0;
}
