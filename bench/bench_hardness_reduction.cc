// Validation bench for the Section 4 NP-hardness reduction: builds the
// reduction table for random yes/no 3DM instances and confirms, via the
// exhaustive solver, that the optimal 3-diverse star count hits 3n(d-1)
// exactly on yes-instances (Lemma 3).

#include <cstdio>

#include "common/rng.h"
#include "common/text_table.h"
#include "core/tp.h"
#include "anonymity/generalization.h"
#include "hardness/exact_solver.h"
#include "hardness/reduction.h"
#include "hardness/three_dim_matching.h"

int main() {
  using namespace ldv;
  std::printf("=== Section 4: NP-hardness reduction validation (Lemma 3) ===\n\n");

  Rng rng(2024);
  TextTable table({"instance", "n", "d", "m", "3DM", "target 3n(d-1)", "OPT stars", "agree"});
  int checked = 0, agreed = 0;

  auto run_instance = [&](const std::string& label, const ThreeDmInstance& inst,
                          std::uint32_t m) {
    Table t = BuildReductionTable(inst, m);
    if (t.size() > 15) return;  // exhaustive solver bound
    bool yes = Solve3Dm(inst).has_value();
    ExactStarResult opt = ExactStarMinimization(t, 3);
    std::uint64_t target = ReductionTargetStars(inst.n, inst.d());
    bool agree = yes ? (opt.feasible && opt.stars == target)
                     : (!opt.feasible || opt.stars > target);
    ++checked;
    agreed += agree ? 1 : 0;
    table.AddRow({label, std::to_string(inst.n), std::to_string(inst.d()), std::to_string(m),
                  yes ? "yes" : "no", std::to_string(target),
                  opt.feasible ? std::to_string(opt.stars) : "infeasible",
                  agree ? "OK" : "MISMATCH"});
  };

  // The paper's Figure 1 instance is 12 rows: exhaustive-checkable.
  run_instance("paper-fig1", PaperFigure1Instance(), 8);
  for (int i = 0; i < 6; ++i) {
    ThreeDmInstance planted = MakePlantedYesInstance(2 + rng.Below(3), rng.Below(4), rng);
    run_instance("planted-" + std::to_string(i), planted, 3 + rng.Below(3));
  }
  for (int i = 0; i < 6; ++i) {
    ThreeDmInstance random = MakeRandomInstance(2 + rng.Below(3), 3 + rng.Below(4), rng);
    run_instance("random-" + std::to_string(i), random, 3 + rng.Below(3));
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Lemma 3 agreement: %d / %d instances\n", agreed, checked);
  return agreed == checked ? 0 : 1;
}
