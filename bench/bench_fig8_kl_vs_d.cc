// Reproduces Figure 8: KL-divergence vs d (l = 6), TDS vs TP+. Same
// registry/batch shape as Figure 7, sweeping the projection dimensionality.

#include <cstdio>

#include "bench_util.h"
#include "common/text_table.h"
#include "core/batch.h"

namespace ldv {
namespace {

constexpr Algorithm kColumns[] = {Algorithm::kTds, Algorithm::kTpPlus};

void RunFamily(const char* name, const Table& source, const bench::BenchConfig& config) {
  const std::uint32_t l = 6;
  TextTable table({"d", "TDS", "TP+"});
  for (std::size_t d = 1; d <= 7; ++d) {
    std::vector<Table> family = bench::Family(source, d, config);
    if (family.size() > 3) family.erase(family.begin() + 3, family.end());
    std::vector<AnonymizationOutcome> results =
        AnonymizeBatch(bench::FamilyJobs(family, l, kColumns, AnonymizerOptions{}));
    double sums[2] = {0, 0};
    std::size_t feasible = 0;
    for (std::size_t t = 0; t * 2 < results.size(); ++t) {
      if (!results[t * 2].feasible || !results[t * 2 + 1].feasible) continue;
      ++feasible;
      sums[0] += results[t * 2].kl_divergence;
      sums[1] += results[t * 2 + 1].kl_divergence;
    }
    if (feasible == 0) continue;
    table.AddRow({FormatDouble(static_cast<double>(d), 0), FormatDouble(sums[0] / feasible, 3),
                  FormatDouble(sums[1] / feasible, 3)});
  }
  std::printf("Figure 8 (%s-d, l = 6): KL-divergence vs d\n%s\n", name,
              table.ToString().c_str());
}

}  // namespace
}  // namespace ldv

int main(int argc, char** argv) {
  ldv::bench::BenchConfig config = ldv::bench::ParseConfig(argc, argv);
  ldv::bench::PrintHeader("Figure 8: KL-divergence vs d (l = 6, TDS vs TP+)", config);
  ldv::bench::Datasets data = ldv::bench::LoadDatasets(config);
  ldv::RunFamily("SAL", data.sal, config);
  ldv::RunFamily("OCC", data.occ, config);
  return 0;
}
