// Reproduces Figure 3: average number of stars vs the number d of QI
// attributes (l = 6) for Hilbert, TP and TP+, including the TP-vs-Hilbert
// crossover as d grows. Dispatches through the algorithm registry as one
// batch per projection family.

#include <cstdio>

#include "bench_util.h"
#include "common/text_table.h"
#include "core/batch.h"

namespace ldv {
namespace {

constexpr Algorithm kColumns[] = {Algorithm::kHilbert, Algorithm::kTp, Algorithm::kTpPlus};

void RunFamily(const char* name, const Table& source, const bench::BenchConfig& config) {
  const std::uint32_t l = 6;
  TextTable table({"d", "Hilbert", "TP", "TP+"});
  for (std::size_t d = 1; d <= 7; ++d) {
    std::vector<Table> family = bench::Family(source, d, config);
    std::vector<AnonymizationOutcome> results =
        AnonymizeBatch(bench::FamilyJobs(family, l, kColumns));
    double sums[3] = {0, 0, 0};
    std::size_t feasible = 0;
    for (std::size_t t = 0; t * 3 < results.size(); ++t) {
      if (!results[t * 3].feasible || !results[t * 3 + 1].feasible ||
          !results[t * 3 + 2].feasible) {
        continue;
      }
      ++feasible;
      for (int a = 0; a < 3; ++a) sums[a] += static_cast<double>(results[t * 3 + a].stars);
    }
    if (feasible == 0) continue;
    table.AddRow({FormatDouble(static_cast<double>(d), 0),
                  FormatDouble(sums[0] / feasible, 0), FormatDouble(sums[1] / feasible, 0),
                  FormatDouble(sums[2] / feasible, 0)});
  }
  std::printf("Figure 3 (%s-d, l = 6): average number of stars vs d\n%s\n", name,
              table.ToString().c_str());
}

}  // namespace
}  // namespace ldv

int main(int argc, char** argv) {
  ldv::bench::BenchConfig config = ldv::bench::ParseConfig(argc, argv);
  ldv::bench::PrintHeader("Figure 3: average number of stars vs d (l = 6)", config);
  ldv::bench::Datasets data = ldv::bench::LoadDatasets(config);
  ldv::RunFamily("SAL", data.sal, config);
  ldv::RunFamily("OCC", data.occ, config);
  return 0;
}
