// Reproduces Figure 2: average number of stars vs l (SAL-4 and OCC-4) for
// Hilbert, TP and TP+. Dispatches through the algorithm registry and runs
// each (table, l, algorithm) cell as one batched job.

#include <cstdio>

#include "bench_util.h"
#include "common/text_table.h"
#include "core/batch.h"

namespace ldv {
namespace {

constexpr Algorithm kColumns[] = {Algorithm::kHilbert, Algorithm::kTp, Algorithm::kTpPlus};

void RunFamily(const char* name, const Table& source, const bench::BenchConfig& config) {
  std::vector<Table> family = bench::Family(source, 4, config);
  TextTable table({"l", "Hilbert", "TP", "TP+"});
  for (std::uint32_t l = 2; l <= 10; ++l) {
    std::vector<AnonymizationOutcome> results =
        AnonymizeBatch(bench::FamilyJobs(family, l, kColumns));
    double sums[3] = {0, 0, 0};
    std::size_t feasible = 0;
    for (std::size_t t = 0; t * 3 < results.size(); ++t) {
      if (!results[t * 3].feasible || !results[t * 3 + 1].feasible ||
          !results[t * 3 + 2].feasible) {
        continue;
      }
      ++feasible;
      for (int a = 0; a < 3; ++a) sums[a] += static_cast<double>(results[t * 3 + a].stars);
    }
    if (feasible == 0) continue;
    table.AddRow({FormatDouble(l, 0), FormatDouble(sums[0] / feasible, 0),
                  FormatDouble(sums[1] / feasible, 0), FormatDouble(sums[2] / feasible, 0)});
  }
  std::printf("Figure 2 (%s-4): average number of stars vs l\n%s\n", name,
              table.ToString().c_str());
}

}  // namespace
}  // namespace ldv

int main(int argc, char** argv) {
  ldv::bench::BenchConfig config = ldv::bench::ParseConfig(argc, argv);
  ldv::bench::PrintHeader("Figure 2: average number of stars vs l", config);
  ldv::bench::Datasets data = ldv::bench::LoadDatasets(config);
  ldv::RunFamily("SAL", data.sal, config);
  ldv::RunFamily("OCC", data.occ, config);
  return 0;
}
