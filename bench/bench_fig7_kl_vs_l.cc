// Reproduces Figure 7: KL-divergence vs l (SAL-4 / OCC-4), TDS vs TP+.

#include <cstdio>

#include "anonymity/generalization.h"
#include "bench_util.h"
#include "common/text_table.h"
#include "core/anonymizer.h"
#include "metrics/kl_divergence.h"
#include "tds/tds.h"

namespace ldv {
namespace {

void RunFamily(const char* name, const Table& source, const bench::BenchConfig& config) {
  std::vector<Table> family = bench::Family(source, 4, config);
  if (family.size() > 3) family.erase(family.begin() + 3, family.end());  // KL evaluation is the bottleneck
  TextTable table({"l", "TDS", "TP+"});
  for (std::uint32_t l = 2; l <= 10; ++l) {
    double sums[2] = {0, 0};
    std::size_t feasible = 0;
    for (const Table& t : family) {
      TdsResult tds = RunTds(t, l);
      AnonymizationOutcome tpp = Anonymize(t, l, Algorithm::kTpPlus);
      if (!tds.feasible || !tpp.feasible) continue;
      ++feasible;
      sums[0] += KlDivergenceSingleDim(t, *tds.generalization);
      GeneralizedTable gen(t, tpp.partition);
      sums[1] += KlDivergenceSuppression(t, gen);
    }
    if (feasible == 0) continue;
    table.AddRow({FormatDouble(l, 0), FormatDouble(sums[0] / feasible, 3),
                  FormatDouble(sums[1] / feasible, 3)});
  }
  std::printf("Figure 7 (%s-4): KL-divergence vs l\n%s\n", name, table.ToString().c_str());
}

}  // namespace
}  // namespace ldv

int main(int argc, char** argv) {
  ldv::bench::BenchConfig config = ldv::bench::ParseConfig(argc, argv);
  ldv::bench::PrintHeader("Figure 7: KL-divergence vs l (TDS vs TP+)", config);
  ldv::bench::Datasets data = ldv::bench::LoadDatasets(config);
  ldv::RunFamily("SAL", data.sal, config);
  ldv::RunFamily("OCC", data.occ, config);
  return 0;
}
