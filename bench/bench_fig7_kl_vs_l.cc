// Reproduces Figure 7: KL-divergence vs l (SAL-4 / OCC-4), TDS vs TP+.
// Both columns come from outcome.kl_divergence, which the shared registry
// post-processing computes with each methodology's Equation-2 estimator
// (single-dimensional for TDS, suppression for TP+).

#include <cstdio>

#include "bench_util.h"
#include "common/text_table.h"
#include "core/batch.h"

namespace ldv {
namespace {

constexpr Algorithm kColumns[] = {Algorithm::kTds, Algorithm::kTpPlus};

void RunFamily(const char* name, const Table& source, const bench::BenchConfig& config) {
  std::vector<Table> family = bench::Family(source, 4, config);
  if (family.size() > 3) family.erase(family.begin() + 3, family.end());  // KL evaluation is the bottleneck
  TextTable table({"l", "TDS", "TP+"});
  for (std::uint32_t l = 2; l <= 10; ++l) {
    std::vector<AnonymizationOutcome> results =
        AnonymizeBatch(bench::FamilyJobs(family, l, kColumns, AnonymizerOptions{}));
    double sums[2] = {0, 0};
    std::size_t feasible = 0;
    for (std::size_t t = 0; t * 2 < results.size(); ++t) {
      if (!results[t * 2].feasible || !results[t * 2 + 1].feasible) continue;
      ++feasible;
      sums[0] += results[t * 2].kl_divergence;
      sums[1] += results[t * 2 + 1].kl_divergence;
    }
    if (feasible == 0) continue;
    table.AddRow({FormatDouble(l, 0), FormatDouble(sums[0] / feasible, 3),
                  FormatDouble(sums[1] / feasible, 3)});
  }
  std::printf("Figure 7 (%s-4): KL-divergence vs l\n%s\n", name, table.ToString().c_str());
}

}  // namespace
}  // namespace ldv

int main(int argc, char** argv) {
  ldv::bench::BenchConfig config = ldv::bench::ParseConfig(argc, argv);
  ldv::bench::PrintHeader("Figure 7: KL-divergence vs l (TDS vs TP+)", config);
  ldv::bench::Datasets data = ldv::bench::LoadDatasets(config);
  ldv::RunFamily("SAL", data.sal, config);
  ldv::RunFamily("OCC", data.occ, config);
  return 0;
}
