// Reproduces the "Frequency of phase three execution" experiment of
// Section 6.1: run TP over every SAL-d / OCC-d table for l in [2, 10] and
// count how often phase three fires. The paper reports zero occurrences on
// all 128 tables.

#include <cstdio>

#include "bench_util.h"
#include "common/text_table.h"
#include "core/tp.h"

namespace ldv {
namespace {

void RunFamily(const char* name, const Table& source, const bench::BenchConfig& config,
               std::size_t* total_runs, std::size_t* phase3_runs) {
  TextTable table({"d", "tables", "runs", "phase1-end", "phase2-end", "phase3-end"});
  for (std::size_t d = 1; d <= 7; ++d) {
    std::size_t runs = 0, p1 = 0, p2 = 0, p3 = 0, tables = 0;
    for (const Table& t : bench::Family(source, d, config)) {
      ++tables;
      GroupedTable grouped(t);
      for (std::uint32_t l = 2; l <= 10; ++l) {
        TpResult result = RunTp(grouped, l);
        if (!result.feasible) continue;
        ++runs;
        switch (result.stats.terminated_phase) {
          case 1: ++p1; break;
          case 2: ++p2; break;
          default: ++p3; break;
        }
      }
    }
    *total_runs += runs;
    *phase3_runs += p3;
    table.AddRow({std::to_string(d), std::to_string(tables), std::to_string(runs),
                  std::to_string(p1), std::to_string(p2), std::to_string(p3)});
  }
  std::printf("Phase-three frequency (%s-d, l in [2,10])\n%s\n", name, table.ToString().c_str());
}

}  // namespace
}  // namespace ldv

int main(int argc, char** argv) {
  ldv::bench::BenchConfig config = ldv::bench::ParseConfig(argc, argv);
  ldv::bench::PrintHeader("Section 6.1: frequency of phase-three execution", config);
  ldv::bench::Datasets data = ldv::bench::LoadDatasets(config);
  std::size_t total = 0, phase3 = 0;
  ldv::RunFamily("SAL", data.sal, config, &total, &phase3);
  ldv::RunFamily("OCC", data.occ, config, &total, &phase3);
  std::printf("TOTAL: %zu TP runs, %zu entered phase three (paper: 0 of 1152)\n", total,
              phase3);
  return 0;
}
