// Empirical approximation-ratio study (validates Theorem 3 / Corollary 3 /
// Lemma 2 beyond the unit tests): TP against the exact tuple and star
// optima on random small tables, plus the exact m = 2 matching comparison.

#include <algorithm>
#include <cstdio>

#include "anonymity/eligibility.h"
#include "anonymity/generalization.h"
#include "common/rng.h"
#include "common/text_table.h"
#include "core/tp.h"
#include "core/tp_plus.h"
#include "hardness/exact_solver.h"
#include "matching/exact_m2.h"

namespace ldv {
namespace {

Table RandomTable(Rng& rng, std::size_t n, std::size_t m, std::vector<std::size_t> domains) {
  std::vector<Attribute> qi;
  for (std::size_t i = 0; i < domains.size(); ++i) {
    qi.push_back(Attribute{"A" + std::to_string(i), domains[i]});
  }
  Table table(Schema(std::move(qi), Attribute{"B", m}));
  std::vector<Value> row(domains.size());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t a = 0; a < domains.size(); ++a) {
      row[a] = rng.Below(static_cast<std::uint32_t>(domains[a]));
    }
    table.AppendRow(row, rng.Below(static_cast<std::uint32_t>(m)));
  }
  return table;
}

}  // namespace
}  // namespace ldv

int main() {
  using namespace ldv;
  std::printf("=== Section 5: empirical approximation ratios on random tables ===\n\n");
  Rng rng(7);

  // ---- Tuple minimization: TP vs exact OPT ----
  {
    TextTable table({"l", "instances", "avg |R|/OPT", "max |R|/OPT", "bound l"});
    for (std::uint32_t l = 2; l <= 4; ++l) {
      double sum_ratio = 0, max_ratio = 0;
      int instances = 0;
      for (int trial = 0; trial < 200; ++trial) {
        Table t = RandomTable(rng, 10 + rng.Below(5), l + 1 + rng.Below(3), {2, 3});
        if (!IsTableEligible(t, l)) continue;
        ExactTupleResult opt = ExactTupleMinimization(t, l);
        TpResult tp = RunTp(t, l);
        if (!opt.feasible || !tp.feasible || opt.removed == 0) continue;
        double ratio =
            static_cast<double>(tp.residue_rows.size()) / static_cast<double>(opt.removed);
        sum_ratio += ratio;
        max_ratio = std::max(max_ratio, ratio);
        ++instances;
      }
      if (instances == 0) continue;
      table.AddRow({std::to_string(l), std::to_string(instances),
                    FormatDouble(sum_ratio / instances, 3), FormatDouble(max_ratio, 3),
                    std::to_string(l)});
    }
    std::printf("Tuple minimization (Problem 2): TP vs exact optimum\n%s\n",
                table.ToString().c_str());
  }

  // ---- Star minimization: TP and TP+ vs exact OPT ----
  {
    TextTable table({"l", "instances", "avg TP/OPT", "max TP/OPT", "avg TP+/OPT", "bound l*d"});
    for (std::uint32_t l = 2; l <= 3; ++l) {
      double sum_tp = 0, max_tp = 0, sum_tpp = 0;
      int instances = 0;
      for (int trial = 0; trial < 120; ++trial) {
        Table t = RandomTable(rng, 9 + rng.Below(4), l + 1 + rng.Below(2), {2, 2});
        if (!IsTableEligible(t, l)) continue;
        ExactStarResult opt = ExactStarMinimization(t, l);
        TpResult tp = RunTp(t, l);
        TpPlusResult tpp = RunTpPlus(t, l);
        if (!opt.feasible || !tp.feasible || opt.stars == 0) continue;
        double rtp = static_cast<double>(PartitionStarCount(t, tp.ToPartition())) /
                     static_cast<double>(opt.stars);
        double rtpp = static_cast<double>(PartitionStarCount(t, tpp.partition)) /
                      static_cast<double>(opt.stars);
        sum_tp += rtp;
        sum_tpp += rtpp;
        max_tp = std::max(max_tp, rtp);
        ++instances;
      }
      if (instances == 0) continue;
      table.AddRow({std::to_string(l), std::to_string(instances),
                    FormatDouble(sum_tp / instances, 3), FormatDouble(max_tp, 3),
                    FormatDouble(sum_tpp / instances, 3), std::to_string(l * 2)});
    }
    std::printf("Star minimization (Problem 1): TP / TP+ vs exact optimum\n%s\n",
                table.ToString().c_str());
  }

  // ---- m = 2: polynomial exact matching vs TP+ ----
  {
    TextTable table({"pairs", "matching stars", "TP+ stars", "TP+/exact"});
    for (std::size_t pairs : {10u, 25u, 50u}) {
      Schema schema({Attribute{"A0", 6}, Attribute{"A1", 6}}, Attribute{"B", 2});
      Table t(schema);
      std::vector<Value> row(2);
      for (std::size_t i = 0; i < 2 * pairs; ++i) {
        row[0] = rng.Below(6);
        row[1] = rng.Below(6);
        t.AppendRow(row, static_cast<SaValue>(i % 2));
      }
      ExactM2Result exact = SolveExactM2(t);
      TpPlusResult tpp = RunTpPlus(t, 2);
      if (!exact.feasible || !tpp.feasible) continue;
      std::uint64_t tpp_stars = PartitionStarCount(t, tpp.partition);
      table.AddRow({std::to_string(pairs), std::to_string(exact.stars),
                    std::to_string(tpp_stars),
                    exact.stars == 0 ? "-" : FormatDouble(static_cast<double>(tpp_stars) /
                                                              static_cast<double>(exact.stars),
                                                          3)});
    }
    std::printf("m = 2 special case (Section 4): exact matching vs TP+\n%s\n",
                table.ToString().c_str());
  }
  return 0;
}
