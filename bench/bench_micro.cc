// google-benchmark microbenchmarks of the building blocks, including the
// DESIGN.md ablations: the Section 5.5 inverted list vs a naive O(m)
// scanning multiset, grouped (multiset) processing vs the raw table, and
// the greedy vs window-DP Hilbert splitters.

#include <benchmark/benchmark.h>

#include "common/grouped_table.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "core/pillar_index.h"
#include "core/tp.h"
#include "data/acs_generator.h"
#include "data/acs_schema.h"
#include "hilbert/hilbert_curve.h"
#include "hilbert/hilbert_partitioner.h"

namespace ldv {
namespace {

// ---- PillarIndex vs naive histogram scanning (ablation #2) ----

void BM_PillarIndexChurn(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    PillarIndex idx = PillarIndex::DenseEmpty(m);
    for (int i = 0; i < 4096; ++i) idx.Increment(rng.Below(static_cast<std::uint32_t>(m)));
    std::uint64_t acc = 0;
    for (int i = 0; i < 4096; ++i) {
      acc += idx.PillarHeight();  // O(1)
      idx.Decrement(idx.FirstPillarSlot());
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 8192);
}
BENCHMARK(BM_PillarIndexChurn)->Arg(8)->Arg(50)->Arg(256);

void BM_NaiveHistogramChurn(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    SaHistogram h(m);
    for (int i = 0; i < 4096; ++i) h.Add(rng.Below(static_cast<std::uint32_t>(m)));
    std::uint64_t acc = 0;
    for (int i = 0; i < 4096; ++i) {
      acc += h.PillarHeight();  // O(m) scan each call
      h.Remove(h.Pillars().front());
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 8192);
}
BENCHMARK(BM_NaiveHistogramChurn)->Arg(8)->Arg(50)->Arg(256);

// ---- Grouping and end-to-end TP (ablation #1) ----

const Table& CachedSal4() {
  static const Table* table = [] {
    Table sal = GenerateSal(50000, 1);
    return new Table(sal.ProjectQi({kAge, kGender, kRace, kEducation}));
  }();
  return *table;
}

void BM_GroupedTableConstruction(benchmark::State& state) {
  const Table& t = CachedSal4();
  for (auto _ : state) {
    GroupedTable grouped(t);
    benchmark::DoNotOptimize(grouped.group_count());
  }
  state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_GroupedTableConstruction);

void BM_TpSolveFromGroups(benchmark::State& state) {
  const Table& t = CachedSal4();
  GroupedTable grouped(t);
  for (auto _ : state) {
    TpResult result = RunTp(grouped, static_cast<std::uint32_t>(state.range(0)));
    benchmark::DoNotOptimize(result.residue_rows.size());
  }
  state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_TpSolveFromGroups)->Arg(2)->Arg(6)->Arg(10);

void BM_TpEndToEnd(benchmark::State& state) {
  const Table& t = CachedSal4();
  for (auto _ : state) {
    TpResult result = RunTp(t, 6);
    benchmark::DoNotOptimize(result.residue_rows.size());
  }
  state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_TpEndToEnd);

// ---- Hilbert curve and splitters (ablation #3) ----

void BM_HilbertEncode(benchmark::State& state) {
  const std::uint32_t dims = static_cast<std::uint32_t>(state.range(0));
  HilbertCurve curve(dims, 7);
  Rng rng(3);
  std::vector<std::uint32_t> coords(dims);
  for (auto _ : state) {
    for (std::uint32_t i = 0; i < dims; ++i) coords[i] = rng.Below(128);
    benchmark::DoNotOptimize(curve.Encode(coords));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HilbertEncode)->Arg(2)->Arg(4)->Arg(7);

void BM_HilbertPartitionGreedy(benchmark::State& state) {
  const Table& t = CachedSal4();
  for (auto _ : state) {
    HilbertResult result = HilbertAnonymize(t, 6);
    benchmark::DoNotOptimize(result.partition.group_count());
  }
  state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_HilbertPartitionGreedy);

void BM_HilbertPartitionWindowDp(benchmark::State& state) {
  const Table& t = CachedSal4();
  HilbertOptions options;
  options.splitter = HilbertOptions::Splitter::kWindowDp;
  for (auto _ : state) {
    HilbertResult result = HilbertAnonymize(t, 6, options);
    benchmark::DoNotOptimize(result.partition.group_count());
  }
  state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_HilbertPartitionWindowDp);

}  // namespace
}  // namespace ldv

BENCHMARK_MAIN();
