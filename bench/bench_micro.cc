// google-benchmark microbenchmarks of the building blocks, including the
// DESIGN.md ablations: the Section 5.5 inverted list vs a naive O(m)
// scanning multiset, grouped (multiset) processing vs the raw table, and
// the greedy vs window-DP Hilbert splitters.
//
// The perf-regression rows (grouping / tp_solve / mondrian / kl_* at
// n in {10k, 100k}) are additionally exported as BENCH_micro.json (or
// $LDIV_BENCH_JSON) so every PR leaves a ns/op trajectory datapoint; see
// the README's Performance section.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "anonymity/generalization.h"
#include "bench_util.h"
#include "common/grouped_table.h"
#include "common/histogram.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/simd.h"
#include "common/workspace.h"
#include "core/pillar_index.h"
#include "core/tp.h"
#include "data/acs_generator.h"
#include "data/acs_schema.h"
#include "data/dataset.h"
#include "engine/artifact_cache.h"
#include "engine/engine.h"
#include "engine/job_spec.h"
#include "hilbert/hilbert_curve.h"
#include "hilbert/hilbert_partitioner.h"
#include "metrics/kl_divergence.h"
#include "mondrian/mondrian.h"

namespace ldv {
namespace {

// Structured workload descriptors per benchmark name, recorded beside the
// timings in BENCH_micro.json (names stay stable; n / attrs / threads
// travel as fields). Populated by RegisterBenchFields() below.
std::map<std::string, bench::BenchFields>& FieldRegistry() {
  static auto* registry = new std::map<std::string, bench::BenchFields>();
  return *registry;
}

// The SIMD level the process dispatches at, recorded as the `simd` field
// on every series whose kernels route through the SIMD layer (grouping,
// Mondrian, Hilbert partitioning, the KL estimators) so trajectory diffs
// can tell a code regression from a host with a different vector ISA.
const char* ActiveSimd() { return simd::LevelName(simd::ActiveLevel()); }

// ---- PillarIndex vs naive histogram scanning (ablation #2) ----

void BM_PillarIndexChurn(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    PillarIndex idx = PillarIndex::DenseEmpty(m);
    for (int i = 0; i < 4096; ++i) idx.Increment(rng.Below(static_cast<std::uint32_t>(m)));
    std::uint64_t acc = 0;
    for (int i = 0; i < 4096; ++i) {
      acc += idx.PillarHeight();  // O(1)
      idx.Decrement(idx.FirstPillarSlot());
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 8192);
}
BENCHMARK(BM_PillarIndexChurn)->Arg(8)->Arg(50)->Arg(256);

void BM_NaiveHistogramChurn(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    SaHistogram h(m);
    for (int i = 0; i < 4096; ++i) h.Add(rng.Below(static_cast<std::uint32_t>(m)));
    std::uint64_t acc = 0;
    for (int i = 0; i < 4096; ++i) {
      acc += h.PillarHeight();  // O(m) scan each call
      h.Remove(h.Pillars().front());
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 8192);
}
BENCHMARK(BM_NaiveHistogramChurn)->Arg(8)->Arg(50)->Arg(256);

// ---- Grouping and end-to-end TP (ablation #1) ----

const Table& CachedSal4() {
  static const Table* table = [] {
    Table sal = GenerateSal(50000, 1);
    return new Table(sal.ProjectQi({kAge, kGender, kRace, kEducation}));
  }();
  return *table;
}

void BM_GroupedTableConstruction(benchmark::State& state) {
  const Table& t = CachedSal4();
  for (auto _ : state) {
    GroupedTable grouped(t);
    benchmark::DoNotOptimize(grouped.group_count());
  }
  state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_GroupedTableConstruction);

void BM_TpSolveFromGroups(benchmark::State& state) {
  const Table& t = CachedSal4();
  GroupedTable grouped(t);
  for (auto _ : state) {
    TpResult result = RunTp(grouped, static_cast<std::uint32_t>(state.range(0)));
    benchmark::DoNotOptimize(result.residue_rows.size());
  }
  state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_TpSolveFromGroups)->Arg(2)->Arg(6)->Arg(10);

void BM_TpEndToEnd(benchmark::State& state) {
  const Table& t = CachedSal4();
  for (auto _ : state) {
    TpResult result = RunTp(t, 6);
    benchmark::DoNotOptimize(result.residue_rows.size());
  }
  state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_TpEndToEnd);

// ---- Hilbert curve and splitters (ablation #3) ----

void BM_HilbertEncode(benchmark::State& state) {
  const std::uint32_t dims = static_cast<std::uint32_t>(state.range(0));
  HilbertCurve curve(dims, 7);
  Rng rng(3);
  std::vector<std::uint32_t> coords(dims);
  for (auto _ : state) {
    for (std::uint32_t i = 0; i < dims; ++i) coords[i] = rng.Below(128);
    benchmark::DoNotOptimize(curve.Encode(coords));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HilbertEncode)->Arg(2)->Arg(4)->Arg(7);

void BM_HilbertPartitionGreedy(benchmark::State& state) {
  const Table& t = CachedSal4();
  for (auto _ : state) {
    HilbertResult result = HilbertAnonymize(t, 6);
    benchmark::DoNotOptimize(result.partition.group_count());
  }
  state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_HilbertPartitionGreedy);

void BM_HilbertPartitionWindowDp(benchmark::State& state) {
  const Table& t = CachedSal4();
  HilbertOptions options;
  options.splitter = HilbertOptions::Splitter::kWindowDp;
  for (auto _ : state) {
    HilbertResult result = HilbertAnonymize(t, 6, options);
    benchmark::DoNotOptimize(result.partition.group_count());
  }
  state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_HilbertPartitionWindowDp);

// ---- Perf-regression rows (exported to BENCH_micro.json) ----
//
// The l = 6 SAL-4 workload of the figure benches at two cardinalities.
// Each benchmark reuses one Workspace across iterations -- the repeated-
// solve regime the Workspace is designed for (sweeps, batch workers).

const Table& SizedSal4(std::size_t n) {
  static const Table* t10k = new Table(
      GenerateSal(10000, 1).ProjectQi({kAge, kGender, kRace, kEducation}));
  static const Table* t100k = new Table(
      GenerateSal(100000, 1).ProjectQi({kAge, kGender, kRace, kEducation}));
  return n == 10000 ? *t10k : *t100k;
}

void BM_Grouping(benchmark::State& state) {
  const Table& t = SizedSal4(static_cast<std::size_t>(state.range(0)));
  Workspace ws;
  for (auto _ : state) {
    GroupedTable grouped(t, &ws);
    benchmark::DoNotOptimize(grouped.group_count());
  }
  state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_Grouping)->Name("grouping")->Arg(10000)->Arg(100000);

void BM_TpSolve(benchmark::State& state) {
  const Table& t = SizedSal4(static_cast<std::size_t>(state.range(0)));
  GroupedTable grouped(t);
  for (auto _ : state) {
    TpResult result = RunTp(grouped, 6);
    benchmark::DoNotOptimize(result.residue_rows.size());
  }
  state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_TpSolve)->Name("tp_solve")->Arg(10000)->Arg(100000);

void BM_Mondrian(benchmark::State& state) {
  const Table& t = SizedSal4(static_cast<std::size_t>(state.range(0)));
  Workspace ws;
  for (auto _ : state) {
    MondrianResult result = MondrianAnonymize(t, 6, &ws);
    benchmark::DoNotOptimize(result.partition.group_count());
  }
  state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_Mondrian)->Name("mondrian")->Arg(10000)->Arg(100000);

void BM_KlSuppression(benchmark::State& state) {
  const Table& t = SizedSal4(static_cast<std::size_t>(state.range(0)));
  TpResult tp = RunTp(t, 6);
  GeneralizedTable generalized(t, tp.ToPartition());
  for (auto _ : state) {
    benchmark::DoNotOptimize(KlDivergenceSuppression(t, generalized));
  }
  state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_KlSuppression)->Name("kl_suppression")->Arg(10000)->Arg(100000);

void BM_KlMultiDim(benchmark::State& state) {
  const Table& t = SizedSal4(static_cast<std::size_t>(state.range(0)));
  MondrianResult mondrian = MondrianAnonymize(t, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(KlDivergenceMultiDim(t, mondrian.generalization));
  }
  state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_KlMultiDim)->Name("kl_multidim")->Arg(10000)->Arg(100000);

// ---- Columnar scan-layout series ----
//
// The same grouping / KL workloads over the full-width (all seven QI
// attributes) SAL tables, where the column-at-a-time scans of the
// columnar Table matter most: signature hashing folds seven contiguous
// columns and point packing accumulates seven stride multiplies per row.
// Tracked as their own BENCH_micro.json series so the scan-layout win
// (vs the row-major trajectory recorded before the columnar refactor)
// stays visible PR over PR.

const Table& SizedSal7(std::size_t n) {
  static const Table* t10k = new Table(GenerateSal(10000, 1));
  static const Table* t100k = new Table(GenerateSal(100000, 1));
  return n == 10000 ? *t10k : *t100k;
}

void BM_GroupingColumnar(benchmark::State& state) {
  const Table& t = SizedSal7(static_cast<std::size_t>(state.range(0)));
  Workspace ws;
  for (auto _ : state) {
    GroupedTable grouped(t, &ws);
    benchmark::DoNotOptimize(grouped.group_count());
  }
  state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_GroupingColumnar)->Name("grouping_columnar")->Arg(10000)->Arg(100000);

void BM_KlMultiDimColumnar(benchmark::State& state) {
  const Table& t = SizedSal7(static_cast<std::size_t>(state.range(0)));
  MondrianResult mondrian = MondrianAnonymize(t, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(KlDivergenceMultiDim(t, mondrian.generalization));
  }
  state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_KlMultiDimColumnar)->Name("kl_multidim_columnar")->Arg(10000)->Arg(100000);

// Cache-blocking sweep of the KL term staging (KlTuning::block_rows) on
// the heaviest estimator workload. The committed kKlBlockRows default was
// picked from this series; it stays registered so any future change to
// the staging layout re-measures the same points.
void BM_KlBlock(benchmark::State& state) {
  const Table& t = SizedSal7(100000);
  MondrianResult mondrian = MondrianAnonymize(t, 6);
  KlTuning tuning;
  tuning.block_rows = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(KlDivergenceMultiDim(t, mondrian.generalization, tuning));
  }
  state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_KlBlock)->Name("kl_block")->Arg(1024)->Arg(4096)->Arg(16384);

// ---- Out-of-core series ----
//
// The paged data plane under its default (unbudgeted) sizing: streamed
// synthetic ingestion through the PagedTableBuilder (chunked generation,
// page staging, spill-file writes, SIMD domain validation, then the mmap
// seal) and the chunked GroupedTable build with a sort buffer small
// enough that both cardinalities spill runs and k-way merge. Both paths
// are byte-identical to their in-RAM twins (paged_equivalence_test), so
// these series track the cost of going out of core, not a different
// answer.

void BM_IngestStream(benchmark::State& state) {
  DatasetSpec spec;
  spec.n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    std::string error;
    std::unique_ptr<PagedTable> paged = GenerateDatasetPaged(spec, {}, &error);
    benchmark::DoNotOptimize(paged->resident().size());
  }
  state.SetItemsProcessed(state.iterations() * spec.n);
}
BENCHMARK(BM_IngestStream)->Name("ingest_stream")->Arg(10000)->Arg(100000);

void BM_GroupingPaged(benchmark::State& state) {
  const Table& t = SizedSal7(static_cast<std::size_t>(state.range(0)));
  Workspace ws;
  for (auto _ : state) {
    GroupedTable grouped =
        GroupedTable::BuildChunked(t, &ws, /*sort_buffer_records=*/4096);
    benchmark::DoNotOptimize(grouped.group_count());
  }
  state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_GroupingPaged)->Name("grouping_paged")->Arg(10000)->Arg(100000);

// ---- Intra-run parallel series ----
//
// The hot kernels again, under explicit thread budgets (1 / 2 / 4): the
// Hilbert window-DP partitioner on the 50k SAL-4 table, Mondrian on the
// 100k SAL-4 table, and grouping on the full-width 100k SAL-7 table.
// Outputs are byte-identical across budgets (perf_equivalence_test's
// ThreadCountEquivalence suite), so these series measure pure scheduling
// win -- on a single-core host the 2t/4t rows simply document the
// oversubscription overhead. Registered with explicit ".../Nt" names so
// the trajectory keys stay stable; the budget travels as the `threads`
// field.

void RunHilbertDpPar(benchmark::State& state, unsigned threads) {
  const Table& t = CachedSal4();
  HilbertOptions options;
  options.splitter = HilbertOptions::Splitter::kWindowDp;
  Workspace ws;
  SetThreadBudget(threads);
  for (auto _ : state) {
    HilbertResult result = HilbertAnonymize(t, 6, options, &ws);
    benchmark::DoNotOptimize(result.partition.group_count());
  }
  SetThreadBudget(1);
  state.SetItemsProcessed(state.iterations() * t.size());
}

void RunMondrianPar(benchmark::State& state, unsigned threads) {
  const Table& t = SizedSal4(100000);
  Workspace ws;
  SetThreadBudget(threads);
  for (auto _ : state) {
    MondrianResult result = MondrianAnonymize(t, 6, &ws);
    benchmark::DoNotOptimize(result.partition.group_count());
  }
  SetThreadBudget(1);
  state.SetItemsProcessed(state.iterations() * t.size());
}

void RunGroupingPar(benchmark::State& state, unsigned threads) {
  const Table& t = SizedSal7(100000);
  Workspace ws;
  SetThreadBudget(threads);
  for (auto _ : state) {
    GroupedTable grouped(t, &ws);
    benchmark::DoNotOptimize(grouped.group_count());
  }
  SetThreadBudget(1);
  state.SetItemsProcessed(state.iterations() * t.size());
}

// ---- Cross-job artifact cache series ----
//
// `sweep_cached` pushes a 3-l TP sweep through a warm Engine each
// iteration, so the shared GroupedTable resolves from the ArtifactCache
// instead of being rebuilt per run -- the steady-state cost of a
// repeated grouping-bound sweep. `grouping_artifact_hit` isolates the
// hit path itself (one lookup pinning a resident artifact) for a direct
// ns/op contrast with the cold `grouping` build series at equal n.

void BM_SweepCached(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Engine engine;
  JobSpec spec;
  spec.dataset.name = "sal";
  spec.ns = {n};
  spec.ds = {4};
  spec.algorithms = {Algorithm::kTp};
  spec.ls = {2, 4, 6};
  spec.compute_kl = false;
  spec.timings = false;
  {
    Expected<JobResult, PipelineError> warm = engine.Run(spec);
    if (!warm.ok()) {
      state.SkipWithError(warm.error().message.c_str());
      return;
    }
  }
  for (auto _ : state) {
    Expected<JobResult, PipelineError> result = engine.Run(spec);
    benchmark::DoNotOptimize(result.ok());
  }
  SetThreadBudget(1);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SweepCached)->Name("sweep_cached")->Arg(10000)->Arg(100000);

void BM_GroupingArtifactHit(benchmark::State& state) {
  const Table& t = SizedSal4(static_cast<std::size_t>(state.range(0)));
  ArtifactCache cache(256u << 20);
  auto grouped = std::make_shared<GroupedTable>(t);
  const std::string key = ArtifactCache::GroupedKey("bench", t);
  cache.InsertGrouped(key, grouped, grouped->ApproxBytes());
  for (auto _ : state) {
    std::shared_ptr<const GroupedTable> hit = cache.LookupGrouped(key);
    benchmark::DoNotOptimize(hit->group_count());
  }
  state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_GroupingArtifactHit)->Name("grouping_artifact_hit")->Arg(10000)->Arg(100000);

void RegisterParallelSeries() {
  for (unsigned threads : {1u, 2u, 4u}) {
    std::string suffix = "/";
    suffix += std::to_string(threads);
    suffix += "t";
    auto series = [&suffix](const char* base) {
      std::string name(base);
      name += suffix;
      return name;
    };
    benchmark::RegisterBenchmark(
        series("hilbert_dp_par").c_str(),
        [threads](benchmark::State& state) { RunHilbertDpPar(state, threads); });
    FieldRegistry()[series("hilbert_dp_par")] = {50000, 4, threads, ActiveSimd()};
    benchmark::RegisterBenchmark(
        series("mondrian_par").c_str(),
        [threads](benchmark::State& state) { RunMondrianPar(state, threads); });
    FieldRegistry()[series("mondrian_par")] = {100000, 4, threads, ActiveSimd()};
    benchmark::RegisterBenchmark(
        series("grouping_par").c_str(),
        [threads](benchmark::State& state) { RunGroupingPar(state, threads); });
    FieldRegistry()[series("grouping_par")] = {100000, 7, threads, ActiveSimd()};
  }
}

// Workload descriptors of the statically registered series. The SAL-4
// perf-regression rows run over 4 QI attributes, the columnar rows over
// all 7 -- the `attrs` field is what explains e.g. kl_multidim_columnar
// costing a multiple of kl_multidim at equal n.
void RegisterBenchFields() {
  auto& fields = FieldRegistry();
  for (std::uint64_t n : {10000ull, 100000ull}) {
    std::string suffix = "/";
    suffix += std::to_string(n);
    auto series = [&suffix](const char* base) {
      std::string name(base);
      name += suffix;
      return name;
    };
    fields[series("grouping")] = {n, 4, 1, ActiveSimd()};
    fields[series("tp_solve")] = {n, 4, 1};
    fields[series("mondrian")] = {n, 4, 1, ActiveSimd()};
    fields[series("kl_suppression")] = {n, 4, 1, ActiveSimd()};
    fields[series("kl_multidim")] = {n, 4, 1, ActiveSimd()};
    fields[series("grouping_columnar")] = {n, 7, 1, ActiveSimd()};
    fields[series("kl_multidim_columnar")] = {n, 7, 1, ActiveSimd()};
    fields[series("ingest_stream")] = {n, 7, 1, ActiveSimd()};
    fields[series("grouping_paged")] = {n, 7, 1, ActiveSimd()};
    fields[series("sweep_cached")] = {n, 4, 1, ActiveSimd()};
    fields[series("grouping_artifact_hit")] = {n, 4, 1, ActiveSimd()};
  }
  for (const char* name : {"kl_block/1024", "kl_block/4096", "kl_block/16384"}) {
    fields[name] = {100000, 7, 1, ActiveSimd()};
  }
  fields["BM_GroupedTableConstruction"] = {50000, 4, 1, ActiveSimd()};
  for (const char* name : {"BM_TpSolveFromGroups/2", "BM_TpSolveFromGroups/6",
                           "BM_TpSolveFromGroups/10"}) {
    fields[name] = {50000, 4, 1};
  }
  fields["BM_TpEndToEnd"] = {50000, 4, 1};
  fields["BM_HilbertPartitionGreedy"] = {50000, 4, 1};
  fields["BM_HilbertPartitionWindowDp"] = {50000, 4, 1};
}

// google-benchmark < 1.8 flags failed runs with Run::error_occurred;
// 1.8+ replaced it with the Run::skipped enum. Probe for whichever member
// this library version has.
template <typename R>
bool RunFailed(const R& run) {
  if constexpr (requires { run.error_occurred; }) {
    return run.error_occurred;
  } else {
    return run.skipped != 0;
  }
}

// Normal console output, plus every finished run collected into the JSON
// trajectory report.
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || RunFailed(run)) continue;
      // GetAdjustedRealTime reports in the run's time unit (ns by default).
      auto it = FieldRegistry().find(run.benchmark_name());
      report_.Add(run.benchmark_name(), run.GetAdjustedRealTime(),
                  it != FieldRegistry().end() ? it->second : bench::BenchFields{});
    }
  }

  const bench::JsonReport& report() const { return report_; }

 private:
  bench::JsonReport report_{"bench_micro"};
};

}  // namespace
}  // namespace ldv

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  // The statically registered series are the sequential trajectory: pin
  // the budget to 1 so they stay comparable across hosts. Only the _par
  // series (which set their own budget per run) fan out.
  ldv::SetThreadBudget(1);
  ldv::RegisterBenchFields();
  ldv::RegisterParallelSeries();
  ldv::JsonTeeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  std::string path = ldv::bench::BenchJsonPath("BENCH_micro.json");
  if (!reporter.report().WriteTo(path)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %zu datapoints to %s\n", reporter.report().size(), path.c_str());
  benchmark::Shutdown();
  return 0;
}
