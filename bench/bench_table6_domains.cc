// Reproduces Table 6: the attribute domain sizes of SAL / OCC, as reported
// by the synthetic generator (both the schema and the values that actually
// occur).

#include <algorithm>
#include <cstdio>
#include <set>

#include "bench_util.h"
#include "common/text_table.h"
#include "data/acs_schema.h"

namespace ldv {
namespace {

std::size_t DistinctValues(const Table& table, AttrId a) {
  std::set<Value> seen;
  for (RowId r = 0; r < table.size(); ++r) seen.insert(table.qi(r, a));
  return seen.size();
}

}  // namespace
}  // namespace ldv

int main(int argc, char** argv) {
  using namespace ldv;
  bench::BenchConfig config = bench::ParseConfig(argc, argv);
  bench::PrintHeader("Table 6: attribute domain sizes", config);
  bench::Datasets data = bench::LoadDatasets(config);

  TextTable table({"Attribute", "Domain size (Table 6)", "Distinct in SAL", "Distinct in OCC"});
  const Schema& schema = data.sal.schema();
  for (AttrId a = 0; a < schema.qi_count(); ++a) {
    table.AddRow({schema.qi(a).name, std::to_string(schema.qi(a).domain_size),
                  std::to_string(DistinctValues(data.sal, a)),
                  std::to_string(DistinctValues(data.occ, a))});
  }
  std::set<SaValue> sal_sa, occ_sa;
  for (RowId r = 0; r < data.sal.size(); ++r) sal_sa.insert(data.sal.sa(r));
  for (RowId r = 0; r < data.occ.size(); ++r) occ_sa.insert(data.occ.sa(r));
  table.AddRow({"Income", "50", std::to_string(sal_sa.size()), "-"});
  table.AddRow({"Occupation", "50", "-", std::to_string(occ_sa.size())});
  std::printf("%s\n", table.ToString().c_str());
  return 0;
}
