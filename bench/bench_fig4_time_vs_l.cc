// Reproduces Figure 4: computation time vs l (SAL-4 / OCC-4).

#include <cstdio>

#include "bench_util.h"
#include "common/text_table.h"
#include "core/anonymizer.h"

namespace ldv {
namespace {

void RunFamily(const char* name, const Table& source, const bench::BenchConfig& config) {
  std::vector<Table> family = bench::Family(source, 4, config);
  TextTable table({"l", "Hilbert(s)", "TP(s)", "TP+(s)"});
  for (std::uint32_t l = 2; l <= 10; ++l) {
    double sums[3] = {0, 0, 0};
    std::size_t feasible = 0;
    for (const Table& t : family) {
      AnonymizationOutcome hil = Anonymize(t, l, Algorithm::kHilbert);
      AnonymizationOutcome tp = Anonymize(t, l, Algorithm::kTp);
      AnonymizationOutcome tpp = Anonymize(t, l, Algorithm::kTpPlus);
      if (!hil.feasible || !tp.feasible || !tpp.feasible) continue;
      ++feasible;
      sums[0] += hil.seconds;
      sums[1] += tp.seconds;
      sums[2] += tpp.seconds;
    }
    if (feasible == 0) continue;
    table.AddRow({FormatDouble(l, 0), FormatDouble(sums[0] / feasible, 4),
                  FormatDouble(sums[1] / feasible, 4), FormatDouble(sums[2] / feasible, 4)});
  }
  std::printf("Figure 4 (%s-4): computation time vs l\n%s\n", name, table.ToString().c_str());
}

}  // namespace
}  // namespace ldv

int main(int argc, char** argv) {
  ldv::bench::BenchConfig config = ldv::bench::ParseConfig(argc, argv);
  ldv::bench::PrintHeader("Figure 4: computation time vs l", config);
  ldv::bench::Datasets data = ldv::bench::LoadDatasets(config);
  ldv::RunFamily("SAL", data.sal, config);
  ldv::RunFamily("OCC", data.occ, config);
  return 0;
}
