// Reproduces Figure 4: computation time vs l (SAL-4 / OCC-4). Timing
// sweeps run sequentially (no batch parallelism, so solves never contend
// for cores) through KL-free registry instances.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/text_table.h"
#include "core/algorithm.h"

namespace ldv {
namespace {

void RunFamily(const char* name, const Table& source, const bench::BenchConfig& config) {
  std::vector<Table> family = bench::Family(source, 4, config);
  std::vector<std::unique_ptr<Anonymizer>> algos = bench::TimingAlgorithms();
  TextTable table({"l", "Hilbert(s)", "TP(s)", "TP+(s)"});
  for (std::uint32_t l = 2; l <= 10; ++l) {
    std::vector<double> sums(algos.size(), 0.0);
    std::size_t feasible = 0;
    for (const Table& t : family) {
      std::vector<double> seconds(algos.size());
      bool all_feasible = true;
      for (std::size_t a = 0; a < algos.size(); ++a) {
        AnonymizationOutcome outcome = algos[a]->Run(t, l);
        all_feasible = all_feasible && outcome.feasible;
        seconds[a] = outcome.seconds;
      }
      if (!all_feasible) continue;
      ++feasible;
      for (std::size_t a = 0; a < algos.size(); ++a) sums[a] += seconds[a];
    }
    if (feasible == 0) continue;
    table.AddRow({FormatDouble(l, 0), FormatDouble(sums[0] / feasible, 4),
                  FormatDouble(sums[1] / feasible, 4), FormatDouble(sums[2] / feasible, 4)});
  }
  std::printf("Figure 4 (%s-4): computation time vs l\n%s\n", name, table.ToString().c_str());
}

}  // namespace
}  // namespace ldv

int main(int argc, char** argv) {
  ldv::bench::BenchConfig config = ldv::bench::ParseConfig(argc, argv);
  ldv::bench::PrintHeader("Figure 4: computation time vs l", config);
  ldv::bench::Datasets data = ldv::bench::LoadDatasets(config);
  ldv::RunFamily("SAL", data.sal, config);
  ldv::RunFamily("OCC", data.occ, config);
  return 0;
}
