#ifndef LDIV_BENCH_BENCH_UTIL_H_
#define LDIV_BENCH_BENCH_UTIL_H_

// Shared helpers for the per-figure benchmark binaries.
//
// Every binary prints the rows of one table/figure of the paper's Section 6
// in plain text. Scale knobs (the paper used 600k-tuple tables and all 35
// four-attribute projections; the defaults here are trimmed so the whole
// harness finishes in minutes):
//   --full              paper-scale run (600k tuples, all projections)
//   LDIV_BENCH_N=<n>    override the table cardinality
//   LDIV_BENCH_PROJ=<k> override the number of projections per family

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/batch.h"
#include "data/acs_generator.h"
#include "data/workload.h"

namespace ldv {
namespace bench {

struct BenchConfig {
  std::size_t n = 60000;
  std::size_t projections = 5;
  bool full = false;
};

inline BenchConfig ParseConfig(int argc, char** argv) {
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) config.full = true;
  }
  if (const char* env = std::getenv("LDIV_FULL"); env && env[0] == '1') config.full = true;
  if (config.full) {
    config.n = 600000;
    config.projections = static_cast<std::size_t>(-1);  // all of them
  }
  if (const char* env = std::getenv("LDIV_BENCH_N")) config.n = std::strtoull(env, nullptr, 10);
  if (const char* env = std::getenv("LDIV_BENCH_PROJ")) {
    config.projections = std::strtoull(env, nullptr, 10);
  }
  return config;
}

/// The two source datasets of Section 6.
struct Datasets {
  Table sal;
  Table occ;
};

inline Datasets LoadDatasets(const BenchConfig& config) {
  return Datasets{GenerateSal(config.n, 1), GenerateOcc(config.n, 2)};
}

/// The SAL-d / OCC-d projection family, capped per the config.
inline std::vector<Table> Family(const Table& source, std::size_t d, const BenchConfig& config) {
  return ProjectionFamily(source, d, config.projections);
}

/// Options for sweeps that do not report KL-divergence, skipping the
/// Equation-2 estimate in the shared post-processing.
inline AnonymizerOptions NoKlOptions() {
  AnonymizerOptions options;
  options.compute_kl = false;
  return options;
}

/// KL-free instances of the Section 6.1 timing columns (Hilbert, TP, TP+),
/// in column order. The timing benches (Figures 4-6) run these
/// sequentially so solves never contend for cores.
inline std::vector<std::unique_ptr<Anonymizer>> TimingAlgorithms() {
  std::vector<std::unique_ptr<Anonymizer>> algos;
  for (Algorithm a : {Algorithm::kHilbert, Algorithm::kTp, Algorithm::kTpPlus}) {
    algos.push_back(AlgorithmRegistry::Global().Create(a, NoKlOptions()));
  }
  return algos;
}

/// Jobs for one figure cell: every table of the family crossed with every
/// algorithm column (tables outer, algorithms inner), so the batch result
/// at index t * algorithms.size() + a is (family[t], algorithms[a]).
inline std::vector<BatchJob> FamilyJobs(const std::vector<Table>& family, std::uint32_t l,
                                        std::span<const Algorithm> algorithms,
                                        const AnonymizerOptions& options = NoKlOptions()) {
  std::vector<BatchJob> jobs;
  jobs.reserve(family.size() * algorithms.size());
  for (const Table& t : family) {
    for (Algorithm a : algorithms) jobs.push_back(BatchJob{&t, l, a, options});
  }
  return jobs;
}

inline void PrintHeader(const std::string& title, const BenchConfig& config) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("n = %zu tuples per table, %s projections per family%s\n\n", config.n,
              config.projections == static_cast<std::size_t>(-1)
                  ? "all"
                  : std::to_string(config.projections).c_str(),
              config.full ? " (paper scale)" : " (reduced scale; --full for paper scale)");
}

/// Structured workload descriptors of one benchmark entry, recorded as
/// JSON fields beside the timing instead of being overloaded into the
/// name (names stay stable across PRs; the fields carry the workload).
/// Zero means "not recorded" and the field is omitted.
struct BenchFields {
  /// Table cardinality the benchmark ran over.
  std::uint64_t n = 0;
  /// Number of QI attributes of the workload table.
  std::uint32_t attrs = 0;
  /// Thread budget the benchmark ran under (1 = the sequential series).
  std::uint32_t threads = 0;
  /// SIMD dispatch level the benchmark ran at ("scalar", "sse2" or
  /// "avx2"); empty = not recorded. Recorded on the series whose kernels
  /// route through the SIMD layer, so trajectory diffs can tell a code
  /// regression from a host with a different vector ISA.
  std::string simd;
};

/// Minimal JSON writer for the BENCH_*.json perf-trajectory files: a tool
/// name plus a flat list of (name, ns_per_op [, n, attrs, threads])
/// datapoints. Kept free of any benchmark-library dependency so every
/// bench binary can emit a trajectory file; bench_micro feeds it from a
/// google-benchmark reporter.
class JsonReport {
 public:
  explicit JsonReport(std::string tool) : tool_(std::move(tool)) {}

  void Add(const std::string& name, double ns_per_op, BenchFields fields = {}) {
    entries_.push_back(Entry{name, ns_per_op, fields});
  }

  std::size_t size() const { return entries_.size(); }

  /// Writes the report to `path`. Returns false on I/O failure.
  bool WriteTo(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n  \"tool\": \"%s\",\n  \"benchmarks\": [\n", tool_.c_str());
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      std::fprintf(f, "    {\"name\": \"%s\", \"ns_per_op\": %.1f", e.name.c_str(),
                   e.ns_per_op);
      if (e.fields.n != 0) {
        std::fprintf(f, ", \"n\": %llu", static_cast<unsigned long long>(e.fields.n));
      }
      if (e.fields.attrs != 0) std::fprintf(f, ", \"attrs\": %u", e.fields.attrs);
      if (e.fields.threads != 0) std::fprintf(f, ", \"threads\": %u", e.fields.threads);
      if (!e.fields.simd.empty()) std::fprintf(f, ", \"simd\": \"%s\"", e.fields.simd.c_str());
      std::fprintf(f, "}%s\n", i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    return std::fclose(f) == 0;
  }

 private:
  struct Entry {
    std::string name;
    double ns_per_op;
    BenchFields fields;
  };
  std::string tool_;
  std::vector<Entry> entries_;
};

/// Destination of the JSON trajectory file: $LDIV_BENCH_JSON or the
/// default `BENCH_micro.json` in the working directory.
inline std::string BenchJsonPath(const char* fallback) {
  if (const char* env = std::getenv("LDIV_BENCH_JSON")) return env;
  return fallback;
}

}  // namespace bench
}  // namespace ldv

#endif  // LDIV_BENCH_BENCH_UTIL_H_
