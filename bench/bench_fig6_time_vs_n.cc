// Reproduces Figure 6: computation time vs dataset cardinality n (l = 6) on
// samples of SAL-4 / OCC-4. Sequential KL-free registry instances, like
// Figures 4 and 5.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/text_table.h"
#include "core/algorithm.h"

namespace ldv {
namespace {

void RunFamily(const char* name, const Table& source, const bench::BenchConfig& config) {
  const std::uint32_t l = 6;
  // The paper samples 100k..600k; at reduced scale we sweep six sample
  // sizes up to the configured n.
  std::vector<std::size_t> sizes;
  for (int i = 1; i <= 6; ++i) sizes.push_back(config.n * i / 6);

  std::vector<Table> family = bench::Family(source, 4, config);
  if (family.size() > 3) family.erase(family.begin() + 3, family.end());  // time sweep; a few projections suffice

  std::vector<std::unique_ptr<Anonymizer>> algos = bench::TimingAlgorithms();

  Rng rng(17);
  TextTable table({"n", "Hilbert(s)", "TP(s)", "TP+(s)"});
  for (std::size_t n : sizes) {
    std::vector<double> sums(algos.size(), 0.0);
    std::size_t feasible = 0;
    for (const Table& t : family) {
      Table sample = t.SampleRows(n, rng);
      std::vector<double> seconds(algos.size());
      bool all_feasible = true;
      for (std::size_t a = 0; a < algos.size(); ++a) {
        AnonymizationOutcome outcome = algos[a]->Run(sample, l);
        all_feasible = all_feasible && outcome.feasible;
        seconds[a] = outcome.seconds;
      }
      if (!all_feasible) continue;
      ++feasible;
      for (std::size_t a = 0; a < algos.size(); ++a) sums[a] += seconds[a];
    }
    if (feasible == 0) continue;
    table.AddRow({std::to_string(n), FormatDouble(sums[0] / feasible, 4),
                  FormatDouble(sums[1] / feasible, 4), FormatDouble(sums[2] / feasible, 4)});
  }
  std::printf("Figure 6 (%s-4, l = 6): computation time vs n\n%s\n", name,
              table.ToString().c_str());
}

}  // namespace
}  // namespace ldv

int main(int argc, char** argv) {
  ldv::bench::BenchConfig config = ldv::bench::ParseConfig(argc, argv);
  ldv::bench::PrintHeader("Figure 6: computation time vs cardinality n (l = 6)", config);
  ldv::bench::Datasets data = ldv::bench::LoadDatasets(config);
  ldv::RunFamily("SAL", data.sal, config);
  ldv::RunFamily("OCC", data.occ, config);
  return 0;
}
