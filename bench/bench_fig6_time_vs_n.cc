// Reproduces Figure 6: computation time vs dataset cardinality n (l = 6) on
// samples of SAL-4 / OCC-4.

#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "common/text_table.h"
#include "core/anonymizer.h"

namespace ldv {
namespace {

void RunFamily(const char* name, const Table& source, const bench::BenchConfig& config) {
  const std::uint32_t l = 6;
  // The paper samples 100k..600k; at reduced scale we sweep six sample
  // sizes up to the configured n.
  std::vector<std::size_t> sizes;
  for (int i = 1; i <= 6; ++i) sizes.push_back(config.n * i / 6);

  std::vector<Table> family = bench::Family(source, 4, config);
  if (family.size() > 3) family.erase(family.begin() + 3, family.end());  // time sweep; a few projections suffice

  Rng rng(17);
  TextTable table({"n", "Hilbert(s)", "TP(s)", "TP+(s)"});
  for (std::size_t n : sizes) {
    double sums[3] = {0, 0, 0};
    std::size_t feasible = 0;
    for (const Table& t : family) {
      Table sample = t.SampleRows(n, rng);
      AnonymizationOutcome hil = Anonymize(sample, l, Algorithm::kHilbert);
      AnonymizationOutcome tp = Anonymize(sample, l, Algorithm::kTp);
      AnonymizationOutcome tpp = Anonymize(sample, l, Algorithm::kTpPlus);
      if (!hil.feasible || !tp.feasible || !tpp.feasible) continue;
      ++feasible;
      sums[0] += hil.seconds;
      sums[1] += tp.seconds;
      sums[2] += tpp.seconds;
    }
    if (feasible == 0) continue;
    table.AddRow({std::to_string(n), FormatDouble(sums[0] / feasible, 4),
                  FormatDouble(sums[1] / feasible, 4), FormatDouble(sums[2] / feasible, 4)});
  }
  std::printf("Figure 6 (%s-4, l = 6): computation time vs n\n%s\n", name,
              table.ToString().c_str());
}

}  // namespace
}  // namespace ldv

int main(int argc, char** argv) {
  ldv::bench::BenchConfig config = ldv::bench::ParseConfig(argc, argv);
  ldv::bench::PrintHeader("Figure 6: computation time vs cardinality n (l = 6)", config);
  ldv::bench::Datasets data = ldv::bench::LoadDatasets(config);
  ldv::RunFamily("SAL", data.sal, config);
  ldv::RunFamily("OCC", data.occ, config);
  return 0;
}
