// Cross-methodology utility comparison (Sections 2 and 6.2, Table 5's
// point): suppression (TP+), the multi-dimensional relaxation of TP+'s
// output (the transformation described at the start of Section 6.2),
// Mondrian multi-dimensional generalization, single-dimensional TDS, and
// Anatomy, all at the same privacy level, measured by KL-divergence
// (Equation 2). All four algorithms dispatch uniformly through the
// registry's batch driver; only the relaxation column is derived here,
// from the suppression artifact the TP+ outcome carries. Expected
// ordering: Anatomy (exact QI) < multi-dimensional < suppression, with
// TDS trailing TP+ as in Figures 7-8.

#include <cstdio>

#include "anonymity/multidim.h"
#include "bench_util.h"
#include "common/text_table.h"
#include "core/batch.h"
#include "metrics/kl_divergence.h"

namespace ldv {
namespace {

constexpr Algorithm kColumns[] = {Algorithm::kTpPlus, Algorithm::kMondrian, Algorithm::kTds,
                                  Algorithm::kAnatomy};

void RunFamily(const char* name, const Table& source, const bench::BenchConfig& config) {
  std::vector<Table> family = bench::Family(source, 4, config);
  if (family.size() > 2) family.erase(family.begin() + 2, family.end());
  TextTable table({"l", "TP+ (suppr.)", "TP+ relaxed", "Mondrian", "TDS", "Anatomy"});
  for (std::uint32_t l : {2u, 4u, 6u, 8u}) {
    std::vector<AnonymizationOutcome> results =
        AnonymizeBatch(bench::FamilyJobs(family, l, kColumns, AnonymizerOptions{}));
    double sums[5] = {0, 0, 0, 0, 0};
    std::size_t feasible = 0;
    for (std::size_t t = 0; t * 4 < results.size(); ++t) {
      const AnonymizationOutcome& tpp = results[t * 4];
      const AnonymizationOutcome& mondrian = results[t * 4 + 1];
      const AnonymizationOutcome& tds = results[t * 4 + 2];
      const AnonymizationOutcome& anatomy = results[t * 4 + 3];
      if (!tpp.feasible || !mondrian.feasible || !tds.feasible || !anatomy.feasible) continue;
      ++feasible;
      BoxGeneralization relaxed = RelaxSuppressionToMultiDim(family[t], *tpp.generalized);
      sums[0] += tpp.kl_divergence;
      sums[1] += KlDivergenceMultiDim(family[t], relaxed);
      sums[2] += mondrian.kl_divergence;
      sums[3] += tds.kl_divergence;
      sums[4] += anatomy.kl_divergence;
    }
    if (feasible == 0) continue;
    table.AddRow({FormatDouble(l, 0), FormatDouble(sums[0] / feasible, 3),
                  FormatDouble(sums[1] / feasible, 3), FormatDouble(sums[2] / feasible, 3),
                  FormatDouble(sums[3] / feasible, 3), FormatDouble(sums[4] / feasible, 3)});
  }
  std::printf("Methodology comparison (%s-4): KL-divergence vs l\n%s\n", name,
              table.ToString().c_str());
}

}  // namespace
}  // namespace ldv

int main(int argc, char** argv) {
  ldv::bench::BenchConfig config = ldv::bench::ParseConfig(argc, argv);
  ldv::bench::PrintHeader(
      "Sections 2 / 6.2: anonymization methodologies at equal privacy", config);
  ldv::bench::Datasets data = ldv::bench::LoadDatasets(config);
  ldv::RunFamily("SAL", data.sal, config);
  ldv::RunFamily("OCC", data.occ, config);
  std::printf(
      "Expected ordering (Section 6.2): Anatomy <= multi-dimensional <=\n"
      "suppression; relaxation never exceeds its suppression source.\n");
  return 0;
}
