// Cross-methodology utility comparison (Sections 2 and 6.2, Table 5's
// point): suppression (TP+), the multi-dimensional relaxation of TP+'s
// output (the transformation described at the start of Section 6.2),
// Mondrian multi-dimensional generalization, single-dimensional TDS, and
// Anatomy, all at the same privacy level, measured by KL-divergence
// (Equation 2). Expected ordering: Anatomy (exact QI) < multi-dimensional
// < suppression, with TDS trailing TP+ as in Figures 7-8.

#include <cstdio>

#include "anonymity/anatomy.h"
#include "anonymity/generalization.h"
#include "anonymity/multidim.h"
#include "bench_util.h"
#include "common/text_table.h"
#include "core/anonymizer.h"
#include "metrics/kl_divergence.h"
#include "mondrian/mondrian.h"
#include "tds/tds.h"

namespace ldv {
namespace {

void RunFamily(const char* name, const Table& source, const bench::BenchConfig& config) {
  std::vector<Table> family = bench::Family(source, 4, config);
  if (family.size() > 2) family.erase(family.begin() + 2, family.end());
  TextTable table({"l", "TP+ (suppr.)", "TP+ relaxed", "Mondrian", "TDS", "Anatomy"});
  for (std::uint32_t l : {2u, 4u, 6u, 8u}) {
    double sums[5] = {0, 0, 0, 0, 0};
    std::size_t feasible = 0;
    for (const Table& t : family) {
      AnonymizationOutcome tpp = Anonymize(t, l, Algorithm::kTpPlus);
      MondrianResult mondrian = MondrianAnonymize(t, l);
      TdsResult tds = RunTds(t, l);
      AnatomyResult anatomy = AnatomyAnonymize(t, l);
      if (!tpp.feasible || !mondrian.feasible || !tds.feasible || !anatomy.feasible) continue;
      ++feasible;
      GeneralizedTable suppressed(t, tpp.partition);
      BoxGeneralization relaxed = RelaxSuppressionToMultiDim(t, suppressed);
      sums[0] += KlDivergenceSuppression(t, suppressed);
      sums[1] += KlDivergenceMultiDim(t, relaxed);
      sums[2] += KlDivergenceMultiDim(t, mondrian.generalization);
      sums[3] += KlDivergenceSingleDim(t, *tds.generalization);
      sums[4] += KlDivergenceAnatomy(t, anatomy.partition);
    }
    if (feasible == 0) continue;
    table.AddRow({FormatDouble(l, 0), FormatDouble(sums[0] / feasible, 3),
                  FormatDouble(sums[1] / feasible, 3), FormatDouble(sums[2] / feasible, 3),
                  FormatDouble(sums[3] / feasible, 3), FormatDouble(sums[4] / feasible, 3)});
  }
  std::printf("Methodology comparison (%s-4): KL-divergence vs l\n%s\n", name,
              table.ToString().c_str());
}

}  // namespace
}  // namespace ldv

int main(int argc, char** argv) {
  ldv::bench::BenchConfig config = ldv::bench::ParseConfig(argc, argv);
  ldv::bench::PrintHeader(
      "Sections 2 / 6.2: anonymization methodologies at equal privacy", config);
  ldv::bench::Datasets data = ldv::bench::LoadDatasets(config);
  ldv::RunFamily("SAL", data.sal, config);
  ldv::RunFamily("OCC", data.occ, config);
  std::printf(
      "Expected ordering (Section 6.2): Anatomy <= multi-dimensional <=\n"
      "suppression; relaxation never exceeds its suppression source.\n");
  return 0;
}
